package grammar

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ParseBNF reads a grammar from a simple BNF text format:
//
//	# comments run to end of line
//	S -> A 'c' | A d ;
//	A -> a A | b
//	B -> %empty
//
// Rules are "Lhs -> alternatives", alternatives separated by "|". A rule
// ends at an optional ";", at the start of the next rule (an identifier
// followed by "->"), or at end of input. An alternative may be empty or the
// explicit "%empty" / "ε" / "eps" marker.
//
// Identifier classification: every identifier that appears as a left-hand
// side anywhere in the file is a nonterminal; every other identifier, and
// every quoted literal, is a terminal. The start symbol is the left-hand
// side of the first rule unless a "%start Name" directive appears.
func ParseBNF(src string) (*Grammar, error) {
	toks, err := lexBNF(src)
	if err != nil {
		return nil, err
	}
	type rawRule struct {
		lhs      string
		alts     [][]bnfTok
		altLines []int // line of each alternative (its first token, or the rule's)
		line     int
	}
	var rules []rawRule
	start := ""
	i := 0
	peekIsRuleStart := func(j int) bool {
		return j+1 < len(toks) && toks[j].kind == bnfIdent && toks[j+1].kind == bnfArrow
	}
	for i < len(toks) {
		if toks[i].kind == bnfStart {
			i++
			if i >= len(toks) || toks[i].kind != bnfIdent {
				return nil, fmt.Errorf("bnf: %%start must be followed by a name")
			}
			start = toks[i].text
			i++
			continue
		}
		if !peekIsRuleStart(i) {
			return nil, fmt.Errorf("bnf: line %d: expected rule \"Name -> ...\", got %q", toks[i].line, toks[i].text)
		}
		r := rawRule{lhs: toks[i].text, line: toks[i].line}
		i += 2 // skip IDENT ->
		var alt []bnfTok
		flush := func() {
			line := r.line
			if len(alt) > 0 {
				line = alt[0].line
			}
			r.alts = append(r.alts, alt)
			r.altLines = append(r.altLines, line)
			alt = nil
		}
	alts:
		for i < len(toks) {
			switch toks[i].kind {
			case bnfPipe:
				flush()
				i++
			case bnfSemi:
				i++
				break alts
			case bnfStart:
				break alts
			case bnfIdent, bnfQuoted, bnfEmpty:
				if toks[i].kind == bnfIdent && peekIsRuleStart(i) {
					break alts
				}
				alt = append(alt, toks[i])
				i++
			default:
				return nil, fmt.Errorf("bnf: line %d: unexpected token %q", toks[i].line, toks[i].text)
			}
		}
		flush()
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("bnf: no rules found")
	}
	if start == "" {
		start = rules[0].lhs
	}

	isNT := make(map[string]bool, len(rules))
	for _, r := range rules {
		isNT[r.lhs] = true
	}
	b := NewBuilder(start)
	for _, r := range rules {
		for ai, alt := range r.alts {
			rhs := make([]Symbol, 0, len(alt))
			for _, t := range alt {
				switch {
				case t.kind == bnfEmpty:
					// contributes no symbols
				case t.kind == bnfQuoted:
					rhs = append(rhs, T(t.text))
				case isNT[t.text]:
					rhs = append(rhs, NT(t.text))
				default:
					rhs = append(rhs, T(t.text))
				}
			}
			b.AddAt(r.altLines[ai], r.lhs, rhs...)
		}
	}
	return b.Build()
}

// MustParseBNF is ParseBNF that panics on error; for tests and package-level
// grammar literals.
func MustParseBNF(src string) *Grammar {
	g, err := ParseBNF(src)
	if err != nil {
		panic(err)
	}
	return g
}

type bnfTokKind uint8

const (
	bnfIdent bnfTokKind = iota
	bnfQuoted
	bnfArrow
	bnfPipe
	bnfSemi
	bnfEmpty
	bnfStart
)

type bnfTok struct {
	kind bnfTokKind
	text string
	line int
}

func lexBNF(src string) ([]bnfTok, error) {
	var toks []bnfTok
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '|':
			toks = append(toks, bnfTok{bnfPipe, "|", line})
			i++
		case c == ';':
			toks = append(toks, bnfTok{bnfSemi, ";", line})
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, bnfTok{bnfArrow, "->", line})
			i += 2
		case c == ':' && (i+1 >= len(src) || src[i+1] != ':'):
			// yacc-style "Name : alt" is accepted as a synonym for "->"
			toks = append(toks, bnfTok{bnfArrow, ":", line})
			i++
		case c == ':' && i+2 < len(src) && src[i+1] == ':' && src[i+2] == '=':
			toks = append(toks, bnfTok{bnfArrow, "::=", line})
			i += 3
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != quote {
				if src[j] == '\\' && j+1 < len(src) {
					j++
					switch src[j] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '\\', '\'', '"':
						sb.WriteByte(src[j])
					default:
						sb.WriteByte('\\')
						sb.WriteByte(src[j])
					}
				} else {
					sb.WriteByte(src[j])
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("bnf: line %d: unterminated quoted literal", line)
			}
			toks = append(toks, bnfTok{bnfQuoted, sb.String(), line})
			i = j + 1
		case c == '%':
			j := i + 1
			for j < len(src) && isWordByte(src[j]) {
				j++
			}
			word := src[i:j]
			switch word {
			case "%empty":
				toks = append(toks, bnfTok{bnfEmpty, word, line})
			case "%start":
				toks = append(toks, bnfTok{bnfStart, word, line})
			default:
				return nil, fmt.Errorf("bnf: line %d: unknown directive %q", line, word)
			}
			i = j
		case strings.HasPrefix(src[i:], "ε"):
			toks = append(toks, bnfTok{bnfEmpty, "ε", line})
			i += len("ε")
		default:
			r, size := utf8.DecodeRuneInString(src[i:])
			if !isWordStart(r) {
				return nil, fmt.Errorf("bnf: line %d: unexpected character %q", line, string(r))
			}
			j := i + size
			for j < len(src) {
				r2, size2 := utf8.DecodeRuneInString(src[j:])
				if !isWordRune(r2) {
					break
				}
				j += size2
			}
			word := src[i:j]
			if word == "eps" {
				toks = append(toks, bnfTok{bnfEmpty, word, line})
			} else {
				toks = append(toks, bnfTok{bnfIdent, word, line})
			}
			i = j
		}
	}
	return toks, nil
}

func isWordStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isWordRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isWordByte(b byte) bool {
	return b == '_' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}
