package grammar

// This file is the certificate layer: a Certificate records that a static
// verifier (internal/grammarlint) checked the well-formedness and
// no-left-recursion preconditions of the CoStar correctness theorems
// (Theorem 5.8: Error results are unreachable for well-formed,
// non-left-recursive grammars). A certificate is bound to the grammar it
// was issued for by a content fingerprint, and attaching it switches the
// engines into certified mode, where the dynamic left-recursion probe is
// demoted from an error path to a debug assertion.
//
// The grammar package only stores and validates certificates; it cannot
// issue them. Issuance lives in internal/grammarlint, whose Certify runs
// every static pass and refuses when any error-severity diagnostic exists.

import (
	"fmt"
	"sync/atomic"
)

// Certificate attests that a static verifier found a grammar well-formed
// and free of left recursion (direct, indirect, and hidden-through-nullable
// prefixes). Fingerprint binds the attestation to the grammar content; the
// remaining fields summarize what was checked, for diagnostics and logs.
type Certificate struct {
	// Fingerprint must equal Compiled.Fingerprint() of the grammar the
	// certificate is attached to; Certify enforces the match.
	Fingerprint uint64
	// Checks names the static passes that ran clean, e.g. "well-formed",
	// "no-left-recursion".
	Checks []string
	// Issuer identifies the verifier that produced the certificate.
	Issuer string
}

// String renders the certificate compactly.
func (cert *Certificate) String() string {
	return fmt.Sprintf("certificate{%s, fp=%016x, checks=%v}", cert.Issuer, cert.Fingerprint, cert.Checks)
}

// Fingerprint returns a content hash of the compiled grammar: start symbol,
// production order, and every RHS symbol, in their dense-ID coordinates
// (which are themselves a pure function of the string grammar). Two
// grammars with equal productions-in-order and start symbol have equal
// fingerprints. FNV-1a over the ID stream.
func (c *Compiled) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mixString := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		mix(0xff) // terminator so "ab","c" ≠ "a","bc"
	}
	// Dense IDs are assigned from names, so hash the name tables once and
	// the structure as IDs; renaming a symbol changes the fingerprint, as
	// it must (diagnostics and certificates name symbols).
	mixString(c.g.Start)
	mix(uint64(len(c.termNames)))
	for _, t := range c.termNames {
		mixString(t)
	}
	mix(uint64(len(c.ntNames)))
	for _, n := range c.ntNames {
		mixString(n)
	}
	mix(uint64(len(c.prodLhs)))
	for i := range c.prodLhs {
		mix(uint64(uint32(c.prodLhs[i])))
		rhs := c.prodRhs[i]
		mix(uint64(len(rhs)))
		for _, s := range rhs {
			mix(uint64(uint32(s)))
		}
	}
	return h
}

// Certify attaches cert to the compiled grammar after checking that the
// certificate's fingerprint matches the grammar content. Attachment is
// atomic and idempotent; once certified, Parser sessions constructed over
// the grammar run in certified mode. Only internal/grammarlint should call
// this — attaching a hand-built certificate to an unverified grammar voids
// the "Error is unreachable" guarantee the certified mode relies on.
func (c *Compiled) Certify(cert *Certificate) error {
	if cert == nil {
		return fmt.Errorf("grammar: Certify(nil)")
	}
	if got := c.Fingerprint(); cert.Fingerprint != got {
		return fmt.Errorf("grammar: certificate fingerprint %016x does not match grammar fingerprint %016x",
			cert.Fingerprint, got)
	}
	c.cert.Store(cert)
	return nil
}

// Certificate returns the attached certificate, or nil when the grammar has
// not been certified. Safe for concurrent use with Certify.
func (c *Compiled) Certificate() *Certificate { return c.cert.Load() }

// certSlot is split into its own type so Compiled's table fields stay a
// closed set for the immutablecompiled analyzer: the certificate is the one
// intentionally-mutable (write-once, atomic) slot on an otherwise immutable
// value.
type certSlot = atomic.Pointer[Certificate]
