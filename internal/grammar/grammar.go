// Package grammar defines context-free grammars in the BNF form consumed by
// the CoStar parser: terminals, nonterminals, productions, tokens, and the
// well-formedness checks that the parser's guarantees depend on.
//
// The representation follows Figure 1 of the CoStar paper (PLDI 2021):
//
//	Terminals    a, b ∈ T
//	Nonterminals X, Y ∈ N
//	Symbols      s ::= a | X
//	Grammars     G ::= • | X → γ, G
//	Tokens       t ::= (a, l)
//
// A Grammar is an ordered list of productions. Order matters: ALL(*)
// prediction identifies alternatives by their production index, and the
// parser reports ambiguous inputs by choosing the lowest-numbered viable
// alternative, exactly as ANTLR does.
package grammar

import (
	"fmt"
	"sort"
	"strings"
)

// SymKind distinguishes terminals from nonterminals.
type SymKind uint8

const (
	// Terminal symbols match a single token whose Terminal field has the
	// same name.
	Terminal SymKind = iota
	// Nonterminal symbols are rewritten by productions.
	Nonterminal
)

// Symbol is a grammar symbol: a terminal or a nonterminal. Symbols are
// comparable values and may be used as map keys.
type Symbol struct {
	Kind SymKind
	Name string
}

// T constructs a terminal symbol.
func T(name string) Symbol { return Symbol{Kind: Terminal, Name: name} }

// NT constructs a nonterminal symbol.
func NT(name string) Symbol { return Symbol{Kind: Nonterminal, Name: name} }

// IsT reports whether s is a terminal.
func (s Symbol) IsT() bool { return s.Kind == Terminal }

// IsNT reports whether s is a nonterminal.
func (s Symbol) IsNT() bool { return s.Kind == Nonterminal }

// String renders the symbol; terminals are single-quoted when they are not
// plain identifiers, so that round-tripping through ParseBNF is possible.
func (s Symbol) String() string {
	if s.Kind == Nonterminal {
		return s.Name
	}
	if isIdent(s.Name) {
		return s.Name
	}
	return "'" + strings.ReplaceAll(s.Name, "'", `\'`) + "'"
}

// Compare orders symbols: terminals before nonterminals, then by name.
// It is the comparison the paper's Coq development performs inside its
// AVL-tree maps (compareNT of Section 6.1).
func (s Symbol) Compare(o Symbol) int {
	if s.Kind != o.Kind {
		if s.Kind == Terminal {
			return -1
		}
		return 1
	}
	return strings.Compare(s.Name, o.Name)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// SymbolsString renders a sentential form; the empty form is "ε".
func SymbolsString(syms []Symbol) string {
	if len(syms) == 0 {
		return "ε"
	}
	parts := make([]string, len(syms))
	for i, s := range syms {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}

// Production is a grammar rule X → γ. Rhs may be empty (an ε-production).
type Production struct {
	Lhs string
	Rhs []Symbol
}

// String renders the production as "X -> γ".
func (p Production) String() string {
	return p.Lhs + " -> " + SymbolsString(p.Rhs)
}

// Token is a terminal paired with the literal text it was lexed from,
// (a, l) in the paper's notation.
type Token struct {
	Terminal string
	Literal  string
}

// Tok constructs a token.
func Tok(terminal, literal string) Token {
	return Token{Terminal: terminal, Literal: literal}
}

// String renders the token as terminal:"literal".
func (t Token) String() string {
	return fmt.Sprintf("%s:%q", t.Terminal, t.Literal)
}

// Grammar is an ordered sequence of productions together with a start
// nonterminal. Construct one with New (or a Builder, or ParseBNF) so that
// the internal indices are populated.
type Grammar struct {
	Start string
	Prods []Production

	terminals []string // sorted, deduplicated
	nts       []string // in order of first definition
	maxRhsLen int
	prodLines []int     // production index → 1-based source line (0 unknown)
	c         *Compiled // dense interned form; single source of truth for
	// the productions-by-LHS index (the old byLhs map is folded into it)
}

// New builds a Grammar from a start symbol and productions. The production
// slice is retained. New does not validate; call Validate for the
// well-formedness check the parser's guarantees assume. New also compiles
// the grammar: every symbol is interned to a dense ID (see Compiled), and
// the string accessors below are views over the compiled tables.
func New(start string, prods []Production) *Grammar {
	g := &Grammar{Start: start, Prods: prods}
	tset := make(map[string]bool)
	ntSeen := make(map[string]bool)
	for _, p := range prods {
		if !ntSeen[p.Lhs] {
			ntSeen[p.Lhs] = true
			g.nts = append(g.nts, p.Lhs)
		}
		if len(p.Rhs) > g.maxRhsLen {
			g.maxRhsLen = len(p.Rhs)
		}
		for _, s := range p.Rhs {
			if s.IsT() {
				tset[s.Name] = true
			}
		}
	}
	g.terminals = make([]string, 0, len(tset))
	for t := range tset {
		g.terminals = append(g.terminals, t)
	}
	sort.Strings(g.terminals)
	g.c = compile(g)
	return g
}

// Compiled returns the dense interned form of the grammar, built once by
// New. All engines run on it; the string API remains for the edges.
func (g *Grammar) Compiled() *Compiled { return g.c }

// ProductionIndices returns the indices into Prods of the productions whose
// left-hand side is nt, in grammar order. The returned slice must not be
// modified.
func (g *Grammar) ProductionIndices(nt string) []int {
	id, ok := g.c.ntIDs[nt]
	if !ok {
		return nil
	}
	return g.c.ntProds[id]
}

// RhssFor returns the right-hand sides for nt in grammar order.
func (g *Grammar) RhssFor(nt string) [][]Symbol {
	idxs := g.ProductionIndices(nt)
	rhss := make([][]Symbol, len(idxs))
	for i, j := range idxs {
		rhss[i] = g.Prods[j].Rhs
	}
	return rhss
}

// HasNT reports whether nt is defined (appears as a left-hand side).
func (g *Grammar) HasNT(nt string) bool {
	id, ok := g.c.ntIDs[nt]
	return ok && len(g.c.ntProds[id]) > 0
}

// Nonterminals returns the defined nonterminals in order of first definition.
// The returned slice must not be modified.
func (g *Grammar) Nonterminals() []string { return g.nts }

// Terminals returns the sorted set of terminals appearing in right-hand
// sides. The returned slice must not be modified.
func (g *Grammar) Terminals() []string { return g.terminals }

// MaxRhsLen returns the length of the longest right-hand side. It is the
// base (minus one) of the stackScore termination measure of Section 4.3.
func (g *Grammar) MaxRhsLen() int { return g.maxRhsLen }

// SetProdLines records the 1-based source line of each production (0 for
// unknown), for positioned diagnostics. The text front ends (ParseBNF, the
// g4 desugarer) call it; programmatic grammars have no lines. len(lines)
// must equal len(Prods); extra or missing entries are ignored rather than
// panicking, since lines are advisory. It returns g for chaining.
func (g *Grammar) SetProdLines(lines []int) *Grammar {
	if len(lines) == len(g.Prods) {
		g.prodLines = lines
	}
	return g
}

// ProdLine returns the 1-based source line production i was read from, or 0
// when unknown (programmatic grammars, out-of-range i).
func (g *Grammar) ProdLine(i int) int {
	if i < 0 || i >= len(g.prodLines) {
		return 0
	}
	return g.prodLines[i]
}

// NumProductions returns len(g.Prods).
func (g *Grammar) NumProductions() int { return len(g.Prods) }

// Stats returns the (|T|, |N|, |P|) triple reported in Figure 8 of the
// paper for each benchmark grammar.
func (g *Grammar) Stats() (numTerminals, numNonterminals, numProductions int) {
	return len(g.terminals), len(g.nts), len(g.Prods)
}

// String renders the grammar with one production per line, alternatives for
// the same nonterminal grouped with "|", start symbol first.
func (g *Grammar) String() string {
	var b strings.Builder
	order := make([]string, 0, len(g.nts))
	if g.HasNT(g.Start) {
		order = append(order, g.Start)
	}
	for _, nt := range g.nts {
		if nt != g.Start {
			order = append(order, nt)
		}
	}
	for _, nt := range order {
		alts := g.RhssFor(nt)
		parts := make([]string, len(alts))
		for i, rhs := range alts {
			parts[i] = SymbolsString(rhs)
		}
		fmt.Fprintf(&b, "%s -> %s\n", nt, strings.Join(parts, " | "))
	}
	return b.String()
}

// Validate checks the well-formedness condition assumed by the parser's
// correctness guarantees:
//
//   - the start symbol is a defined nonterminal;
//   - every nonterminal occurring in a right-hand side is defined;
//   - no production's left-hand side is empty.
//
// Left recursion is deliberately NOT part of well-formedness: CoStar accepts
// left-recursive grammars and detects left recursion dynamically (Section
// 4.1). Use analysis.FindLeftRecursion for the static decision procedure.
func (g *Grammar) Validate() error {
	if g.Start == "" {
		return fmt.Errorf("grammar: empty start symbol")
	}
	if !g.HasNT(g.Start) {
		return fmt.Errorf("grammar: start symbol %q has no productions", g.Start)
	}
	for i, p := range g.Prods {
		if p.Lhs == "" {
			return fmt.Errorf("grammar: production %d has empty left-hand side", i)
		}
		for _, s := range p.Rhs {
			if s.IsNT() && !g.HasNT(s.Name) {
				return fmt.Errorf("grammar: production %d (%s) references undefined nonterminal %q", i, p, s.Name)
			}
			if s.Name == "" {
				return fmt.Errorf("grammar: production %d (%s) contains a symbol with an empty name", i, p)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the grammar.
func (g *Grammar) Clone() *Grammar {
	prods := make([]Production, len(g.Prods))
	for i, p := range g.Prods {
		rhs := make([]Symbol, len(p.Rhs))
		copy(rhs, p.Rhs)
		prods[i] = Production{Lhs: p.Lhs, Rhs: rhs}
	}
	return New(g.Start, prods).SetProdLines(append([]int(nil), g.prodLines...))
}

// TerminalsOf extracts the terminal names of a word of tokens.
func TerminalsOf(w []Token) []string {
	out := make([]string, len(w))
	for i, t := range w {
		out[i] = t.Terminal
	}
	return out
}

// WordString renders a token word compactly by terminal names.
func WordString(w []Token) string {
	if len(w) == 0 {
		return "ε"
	}
	return strings.Join(TerminalsOf(w), " ")
}
