package grammar

import "fmt"

// Builder assembles a Grammar incrementally. It is the programmatic
// counterpart of ParseBNF and is convenient for generated grammars (the
// EBNF desugarer uses it to add fresh nonterminals).
type Builder struct {
	start string
	prods []Production
	lines []int // parallel to prods; 1-based source lines, 0 unknown
	seen  map[string]bool
}

// NewBuilder returns a Builder with the given start nonterminal.
func NewBuilder(start string) *Builder {
	return &Builder{start: start, seen: make(map[string]bool)}
}

// Add appends the production lhs → rhs.
func (b *Builder) Add(lhs string, rhs ...Symbol) *Builder {
	return b.AddAt(0, lhs, rhs...)
}

// AddAt is Add with the production's 1-based source line (0 for unknown),
// so text front ends can give diagnostics positions.
func (b *Builder) AddAt(line int, lhs string, rhs ...Symbol) *Builder {
	b.prods = append(b.prods, Production{Lhs: lhs, Rhs: rhs})
	b.lines = append(b.lines, line)
	b.seen[lhs] = true
	return b
}

// AddProd appends an existing production value.
func (b *Builder) AddProd(p Production) *Builder {
	b.prods = append(b.prods, p)
	b.lines = append(b.lines, 0)
	b.seen[p.Lhs] = true
	return b
}

// Defined reports whether lhs already has at least one production.
func (b *Builder) Defined(lhs string) bool { return b.seen[lhs] }

// Fresh returns a nonterminal name based on base that is not yet defined,
// appending a numeric suffix if needed. The name is reserved immediately so
// repeated calls yield distinct names even before productions are added.
func (b *Builder) Fresh(base string) string {
	name := base
	for i := 1; b.seen[name]; i++ {
		name = fmt.Sprintf("%s_%d", base, i)
	}
	b.seen[name] = true
	return name
}

// SetStart changes the start symbol.
func (b *Builder) SetStart(start string) *Builder {
	b.start = start
	return b
}

// Grammar finalizes the builder into a Grammar.
func (b *Builder) Grammar() *Grammar {
	return New(b.start, b.prods).SetProdLines(b.lines)
}

// Build finalizes and validates in one call.
func (b *Builder) Build() (*Grammar, error) {
	g := b.Grammar()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
