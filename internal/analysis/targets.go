package analysis

import (
	"fmt"
	"sort"
	"strings"

	"costar/internal/grammar"
)

// ReturnTarget is a static continuation an SLL subparser may return into
// when its local stack empties at nonterminal X: the remainder Rest of some
// production of Lhs after an occurrence of X (chased transitively through
// empty remainders). Rest is always non-empty.
//
// This is the Section 3.5 "stable return frames" idea: rather than tracking
// the true caller (which SLL, by design, does not know), the subparser
// simulates a return into every statically possible continuation.
type ReturnTarget struct {
	Lhs  string
	Rest []grammar.Symbol
}

// String renders the target as "Lhs: rest…".
func (rt ReturnTarget) String() string {
	return rt.Lhs + ": " + grammar.SymbolsString(rt.Rest)
}

// Targets holds, for every nonterminal, its stable return targets and
// whether a pop chain from it can reach the end of the whole parse.
// Construct with NewTargets.
type Targets struct {
	byNT      map[string][]ReturnTarget
	canFinish map[string]bool
}

// NewTargets computes stable return targets for every nonterminal of g,
// with g.Start as the parse's start symbol.
func NewTargets(g *grammar.Grammar) *Targets {
	return NewTargetsFor(g, g.Start)
}

// NewTargetsFor is NewTargets with an explicit start symbol (the start
// symbol determines which pop chains can finish the parse).
func NewTargetsFor(g *grammar.Grammar, start string) *Targets {
	t := &Targets{
		byNT:      make(map[string][]ReturnTarget),
		canFinish: make(map[string]bool),
	}
	for _, nt := range g.Nonterminals() {
		t.byNT[nt] = computeTargets(g, nt)
		t.canFinish[nt] = computeCanFinish(g, nt, start)
	}
	return t
}

// For returns the stable return targets of nt. The slice must not be
// modified.
func (t *Targets) For(nt string) []ReturnTarget { return t.byNT[nt] }

// CanFinish reports whether an SLL pop chain from nt can reach the bottom
// of the parse — i.e. some derivation from the start symbol ends exactly
// with nt (possibly through trailing occurrences chained transitively).
// A subparser whose stack empties at such an nt may legitimately stop at
// end of input.
func (t *Targets) CanFinish(nt string) bool { return t.canFinish[nt] }

// computeTargets chases call sites of x; occurrences with an empty
// remainder delegate transitively to the call sites of the enclosing
// left-hand side. Cycles of empty remainders are cut with a seen set.
func computeTargets(g *grammar.Grammar, x string) []ReturnTarget {
	var out []ReturnTarget
	dedup := make(map[string]bool)
	seen := map[string]bool{x: true}
	var visit func(nt string)
	visit = func(nt string) {
		for i, p := range g.Prods {
			for j, s := range p.Rhs {
				if !s.IsNT() || s.Name != nt {
					continue
				}
				rest := p.Rhs[j+1:]
				if len(rest) == 0 {
					if !seen[p.Lhs] {
						seen[p.Lhs] = true
						visit(p.Lhs)
					}
					continue
				}
				key := fmt.Sprintf("%s@%d.%d", p.Lhs, i, j)
				if !dedup[key] {
					dedup[key] = true
					out = append(out, ReturnTarget{Lhs: p.Lhs, Rest: rest})
				}
			}
		}
	}
	visit(x)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lhs != out[j].Lhs {
			return out[i].Lhs < out[j].Lhs
		}
		return grammar.SymbolsString(out[i].Rest) < grammar.SymbolsString(out[j].Rest)
	})
	return out
}

func computeCanFinish(g *grammar.Grammar, x, start string) bool {
	seen := map[string]bool{}
	var visit func(nt string) bool
	visit = func(nt string) bool {
		if nt == start {
			return true
		}
		if seen[nt] {
			return false
		}
		seen[nt] = true
		for _, p := range g.Prods {
			for j, s := range p.Rhs {
				if s.IsNT() && s.Name == nt && j == len(p.Rhs)-1 {
					if visit(p.Lhs) {
						return true
					}
				}
			}
		}
		return false
	}
	return visit(x)
}

// DebugString renders all targets, for golden tests.
func (t *Targets) DebugString() string {
	nts := make([]string, 0, len(t.byNT))
	for nt := range t.byNT {
		nts = append(nts, nt)
	}
	sort.Strings(nts)
	var b strings.Builder
	for _, nt := range nts {
		fmt.Fprintf(&b, "%s (finish=%v):", nt, t.canFinish[nt])
		for _, rt := range t.byNT[nt] {
			fmt.Fprintf(&b, " [%s]", rt)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
