package analysis

import (
	"fmt"
	"sort"
	"strings"

	"costar/internal/grammar"
)

// ReturnTarget is a static continuation an SLL subparser may return into
// when its local stack empties at nonterminal X: the remainder Rest of some
// production of Lhs after an occurrence of X (chased transitively through
// empty remainders). Rest is always non-empty; it aliases the compiled
// production array, so the address of its first element pins the grammar
// position (prediction's config dedup relies on that).
//
// This is the Section 3.5 "stable return frames" idea: rather than tracking
// the true caller (which SLL, by design, does not know), the subparser
// simulates a return into every statically possible continuation.
type ReturnTarget struct {
	Lhs  grammar.NTID    // enclosing production's left-hand side
	Rest []grammar.SymID // compiled remainder after the occurrence
	Prod int             // production the occurrence sits in
	Dot  int             // occurrence position: Rest == Rhs(Prod)[Dot+1:]
}

// StringWith renders the target as "Lhs: rest…".
func (rt ReturnTarget) StringWith(c *grammar.Compiled) string {
	return c.NTName(rt.Lhs) + ": " + c.FormString(rt.Rest)
}

// Targets holds, for every nonterminal, its stable return targets and
// whether a pop chain from it can reach the end of the whole parse, both
// indexed densely by NTID. Construct with NewTargets; both the verified
// machine's SLL mode and the imperative allstar baseline read it, so the
// two engines share one computation of the static return frames.
type Targets struct {
	c         *grammar.Compiled
	byNT      [][]ReturnTarget
	canFinish []bool
}

// NewTargets computes stable return targets for every nonterminal of g,
// with g.Start as the parse's start symbol.
func NewTargets(g *grammar.Grammar) *Targets {
	return NewTargetsFor(g, g.Start)
}

// NewTargetsFor is NewTargets with an explicit start symbol (the start
// symbol determines which pop chains can finish the parse).
func NewTargetsFor(g *grammar.Grammar, start string) *Targets {
	c := g.Compiled()
	n := c.NumNTs()
	t := &Targets{
		c:         c,
		byNT:      make([][]ReturnTarget, n),
		canFinish: make([]bool, n),
	}
	startID, startOK := c.NTIDOf(start)
	for id := grammar.NTID(0); int(id) < n; id++ {
		t.byNT[id] = computeTargets(c, id)
		if startOK {
			t.canFinish[id] = computeCanFinish(c, id, startID)
		}
	}
	return t
}

// Compiled returns the compiled grammar the targets index into.
func (t *Targets) Compiled() *grammar.Compiled { return t.c }

// For returns the stable return targets of nt. The slice must not be
// modified. Out-of-range IDs have no targets.
func (t *Targets) For(nt grammar.NTID) []ReturnTarget {
	if nt < 0 || int(nt) >= len(t.byNT) {
		return nil
	}
	return t.byNT[nt]
}

// CanFinish reports whether an SLL pop chain from nt can reach the bottom
// of the parse — i.e. some derivation from the start symbol ends exactly
// with nt (possibly through trailing occurrences chained transitively).
// A subparser whose stack empties at such an nt may legitimately stop at
// end of input.
func (t *Targets) CanFinish(nt grammar.NTID) bool {
	return nt >= 0 && int(nt) < len(t.canFinish) && t.canFinish[nt]
}

// computeTargets chases call sites of x; occurrences with an empty
// remainder delegate transitively to the call sites of the enclosing
// left-hand side. Cycles of empty remainders are cut with a seen set.
func computeTargets(c *grammar.Compiled, x grammar.NTID) []ReturnTarget {
	var out []ReturnTarget
	nProds := len(c.Grammar().Prods)
	dedup := make(map[int]bool) // occurrence key Prod*maxLen+Dot
	maxLen := c.Grammar().MaxRhsLen() + 1
	seen := make(map[grammar.NTID]bool)
	seen[x] = true
	var visit func(nt grammar.NTID)
	visit = func(nt grammar.NTID) {
		want := grammar.NTSym(nt)
		for i := 0; i < nProds; i++ {
			rhs := c.Rhs(i)
			for j, s := range rhs {
				if s != want {
					continue
				}
				rest := rhs[j+1:]
				if len(rest) == 0 {
					if lhs := c.Lhs(i); !seen[lhs] {
						seen[lhs] = true
						visit(lhs)
					}
					continue
				}
				key := i*maxLen + j
				if !dedup[key] {
					dedup[key] = true
					out = append(out, ReturnTarget{Lhs: c.Lhs(i), Rest: rest, Prod: i, Dot: j})
				}
			}
		}
	}
	visit(x)
	// Canonical order: grammar position. Deterministic, and cheap — no
	// string rendering in the comparator.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prod != out[j].Prod {
			return out[i].Prod < out[j].Prod
		}
		return out[i].Dot < out[j].Dot
	})
	return out
}

func computeCanFinish(c *grammar.Compiled, x, start grammar.NTID) bool {
	seen := make(map[grammar.NTID]bool)
	nProds := len(c.Grammar().Prods)
	var visit func(nt grammar.NTID) bool
	visit = func(nt grammar.NTID) bool {
		if nt == start {
			return true
		}
		if seen[nt] {
			return false
		}
		seen[nt] = true
		want := grammar.NTSym(nt)
		for i := 0; i < nProds; i++ {
			rhs := c.Rhs(i)
			if len(rhs) > 0 && rhs[len(rhs)-1] == want {
				if visit(c.Lhs(i)) {
					return true
				}
			}
		}
		return false
	}
	return visit(x)
}

// DebugString renders all targets by nonterminal name, for golden tests.
func (t *Targets) DebugString() string {
	type row struct {
		name string
		id   grammar.NTID
	}
	rows := make([]row, 0, len(t.byNT))
	for id := range t.byNT {
		rows = append(rows, row{t.c.NTName(grammar.NTID(id)), grammar.NTID(id)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s (finish=%v):", r.name, t.canFinish[r.id])
		for _, rt := range t.byNT[r.id] {
			fmt.Fprintf(&b, " [%s]", rt.StringWith(t.c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
