// Package analysis computes static grammar facts used by the CoStar parser
// and its baselines:
//
//   - NULLABLE, FIRST, and FOLLOW fixpoints;
//   - the static left-recursion decision procedure (the paper's Section 8
//     lists "implement and verify a decision procedure" for the no-left-
//     recursion property as future work; this package supplies it, with
//     cycle witnesses);
//   - call sites per nonterminal, the static information behind the
//     "stable return frames" that CoStar's SLL mode returns into when a
//     subparser stack empties (Section 3.5);
//   - reachability and productivity (useless-symbol detection).
//
// The fixpoints run on the compiled grammar: NULLABLE is a []bool indexed
// by NTID and FIRST/FOLLOW are bitset rows over TermIDs (with EOF as a
// virtual terminal column), so each fixpoint iteration is word-parallel OR
// instead of string-map traffic. The string-keyed accessors remain as views
// materialized once at construction.
package analysis

import (
	"math/bits"
	"sort"

	"costar/internal/grammar"
)

// EOF is the pseudo-terminal that FOLLOW sets use to mark "end of input".
// It never appears in grammars or token words.
const EOF = "$$EOF$$"

// CallSite identifies an occurrence of a nonterminal in a right-hand side:
// grammar production Prod, position Pos (Rhs[Pos] is the occurrence).
type CallSite struct {
	Prod int
	Pos  int
}

// Analysis holds the computed facts for one grammar. Construct with New;
// the zero value is not usable. An Analysis is immutable after construction
// and safe for concurrent use.
type Analysis struct {
	G *grammar.Grammar
	c *grammar.Compiled

	// Dense tables, indexed by NTID; the columns of the bitset rows are
	// TermIDs, with column NumTerms standing for EOF.
	nullableID []bool
	firstRow   [][]uint64
	followRow  [][]uint64
	rowWords   int
	eofCol     int

	// String views over the dense tables, for the public edge API.
	nullable  map[string]bool
	first     map[string]map[string]bool
	follow    map[string]map[string]bool
	callSites map[string][]CallSite
	leftRec   map[string]bool
	cycles    map[string][]string // witness cycle per left-recursive NT
}

// New computes all analyses for g. Cost is polynomial in grammar size; the
// result should be cached alongside the grammar (parser sessions do this).
func New(g *grammar.Grammar) *Analysis {
	c := g.Compiled()
	a := &Analysis{
		G:         g,
		c:         c,
		callSites: make(map[string][]CallSite),
		leftRec:   make(map[string]bool),
		cycles:    make(map[string][]string),
	}
	a.eofCol = c.NumTerms()
	a.rowWords = (a.eofCol + 1 + 63) / 64
	n := c.NumNTs()
	a.nullableID = make([]bool, n)
	a.firstRow = newRows(n, a.rowWords)
	a.followRow = newRows(n, a.rowWords)
	a.computeNullable()
	a.computeFirst()
	a.computeFollow()
	a.materialize()
	a.computeCallSites()
	a.computeLeftRecursion()
	return a
}

func newRows(n, words int) [][]uint64 {
	backing := make([]uint64, n*words)
	rows := make([][]uint64, n)
	for i := range rows {
		rows[i] = backing[i*words : (i+1)*words]
	}
	return rows
}

func setBit(row []uint64, i int) bool {
	w, b := i>>6, uint(i&63)
	if row[w]&(1<<b) != 0 {
		return false
	}
	row[w] |= 1 << b
	return true
}

func hasBit(row []uint64, i int) bool {
	return row[i>>6]&(1<<uint(i&63)) != 0
}

// orRow ORs src into dst, reporting whether dst changed.
func orRow(dst, src []uint64) bool {
	changed := false
	for i, w := range src {
		if dst[i]|w != dst[i] {
			dst[i] |= w
			changed = true
		}
	}
	return changed
}

// Dense-row accessors for engine-side bitset consumers (the recovery
// driver's anchor sets). Rows are rowWords() uint64 words; terminal t
// occupies bit t and the synthetic end-of-input column occupies bit
// EOFCol(). Returned slices are live views into the fixpoint tables and
// must not be modified.

// RowWords is the length in uint64 words of every FIRST/FOLLOW row.
func (a *Analysis) RowWords() int { return a.rowWords }

// EOFCol is the bit column that represents end-of-input in FOLLOW rows.
func (a *Analysis) EOFCol() int { return a.eofCol }

// FirstRowID returns the FIRST bitset row for n, or nil if n is out of
// range.
func (a *Analysis) FirstRowID(n grammar.NTID) []uint64 {
	if n < 0 || int(n) >= len(a.firstRow) {
		return nil
	}
	return a.firstRow[n]
}

// FollowRowID returns the FOLLOW bitset row for n, or nil if n is out of
// range.
func (a *Analysis) FollowRowID(n grammar.NTID) []uint64 {
	if n < 0 || int(n) >= len(a.followRow) {
		return nil
	}
	return a.followRow[n]
}

// RowHas reports whether bit i is set in row (nil-row safe).
func RowHas(row []uint64, i int) bool {
	return i >= 0 && i>>6 < len(row) && hasBit(row, i)
}

// RowSet sets bit i in row.
func RowSet(row []uint64, i int) { setBit(row, i) }

// RowOr ORs src into dst (no-op when src is nil).
func RowOr(dst, src []uint64) {
	if src != nil {
		orRow(dst, src)
	}
}

// Nullable reports whether nt derives the empty word.
func (a *Analysis) Nullable(nt string) bool { return a.nullable[nt] }

// NullableID is Nullable on a compiled nonterminal ID — the engines' form.
func (a *Analysis) NullableID(n grammar.NTID) bool {
	return n >= 0 && int(n) < len(a.nullableID) && a.nullableID[n]
}

// NullableForm reports whether every symbol of the sentential form is
// nullable (terminals never are).
func (a *Analysis) NullableForm(form []grammar.Symbol) bool {
	for _, s := range form {
		if s.IsT() || !a.nullable[s.Name] {
			return false
		}
	}
	return true
}

// NullableFormIDs is NullableForm on a compiled sentential form.
func (a *Analysis) NullableFormIDs(form []grammar.SymID) bool {
	for _, s := range form {
		if s.IsT() || !a.NullableID(s.NT()) {
			return false
		}
	}
	return true
}

// First returns FIRST(nt): the terminals that can begin a word derived from
// nt. The returned map must not be modified.
func (a *Analysis) First(nt string) map[string]bool { return a.first[nt] }

// FirstOfForm computes FIRST of a sentential form (terminals that can begin
// a word derived from it), allocating a fresh set.
func (a *Analysis) FirstOfForm(form []grammar.Symbol) map[string]bool {
	out := make(map[string]bool)
	for _, s := range form {
		if s.IsT() {
			out[s.Name] = true
			return out
		}
		for t := range a.first[s.Name] {
			out[t] = true
		}
		if !a.nullable[s.Name] {
			return out
		}
	}
	return out
}

// FirstOfFormIDs is FirstOfForm on a compiled sentential form, returning
// terminal names (it feeds error messages, so the string hop is fine).
func (a *Analysis) FirstOfFormIDs(form []grammar.SymID) map[string]bool {
	out := make(map[string]bool)
	for _, s := range form {
		if s.IsT() {
			out[a.c.TermName(s.Term())] = true
			return out
		}
		n := s.NT()
		if n >= 0 && int(n) < len(a.firstRow) {
			a.addRowNames(out, a.firstRow[n])
		}
		if !a.NullableID(n) {
			return out
		}
	}
	return out
}

// addRowNames adds the terminal names of a bitset row (excluding EOF) to set.
func (a *Analysis) addRowNames(set map[string]bool, row []uint64) {
	for w, word := range row {
		for ; word != 0; word &= word - 1 {
			col := w*64 + bits.TrailingZeros64(word)
			if col == a.eofCol {
				continue
			}
			set[a.c.TermName(grammar.TermID(col))] = true
		}
	}
}

// Follow returns FOLLOW(nt): terminals that can appear immediately after nt
// in a sentential form derived from the start symbol, plus EOF when nt can
// end such a form. The returned map must not be modified.
func (a *Analysis) Follow(nt string) map[string]bool { return a.follow[nt] }

// CallSites returns the occurrences of nt in right-hand sides, in grammar
// order. The returned slice must not be modified.
func (a *Analysis) CallSites(nt string) []CallSite { return a.callSites[nt] }

// LeftRecursive reports whether nt is left-recursive: there is a derivation
// nt ⇒+ γ nt δ with γ nullable (a "nullable path" from nt back to itself in
// the terminology of Section 5.4.2).
func (a *Analysis) LeftRecursive(nt string) bool { return a.leftRec[nt] }

// LeftRecursiveNTs returns the sorted left-recursive nonterminals.
func (a *Analysis) LeftRecursiveNTs() []string {
	var out []string
	for nt, yes := range a.leftRec {
		if yes {
			out = append(out, nt)
		}
	}
	sort.Strings(out)
	return out
}

// LeftRecursionCycle returns a witness cycle [nt, ..., nt] of nullable-path
// steps for a left-recursive nt, or nil if nt is not left-recursive.
func (a *Analysis) LeftRecursionCycle(nt string) []string { return a.cycles[nt] }

// HasLeftRecursion reports whether any nonterminal is left-recursive.
func (a *Analysis) HasLeftRecursion() bool { return len(a.cycles) > 0 }

// FindLeftRecursion is a convenience wrapper: it returns the sorted
// left-recursive nonterminals of g (empty means the grammar satisfies the
// "no left recursion" assumption of the CoStar correctness theorems).
func FindLeftRecursion(g *grammar.Grammar) []string {
	return New(g).LeftRecursiveNTs()
}

func (a *Analysis) computeNullable() {
	c := a.c
	changed := true
	for changed {
		changed = false
		for i := 0; i < len(c.Grammar().Prods); i++ {
			lhs := c.Lhs(i)
			if a.nullableID[lhs] {
				continue
			}
			ok := true
			for _, s := range c.Rhs(i) {
				if s.IsT() || !a.nullableID[s.NT()] {
					ok = false
					break
				}
			}
			if ok {
				a.nullableID[lhs] = true
				changed = true
			}
		}
	}
}

func (a *Analysis) computeFirst() {
	c := a.c
	changed := true
	for changed {
		changed = false
		for i := 0; i < len(c.Grammar().Prods); i++ {
			row := a.firstRow[c.Lhs(i)]
			for _, s := range c.Rhs(i) {
				if s.IsT() {
					if setBit(row, int(s.Term())) {
						changed = true
					}
					break
				}
				if orRow(row, a.firstRow[s.NT()]) {
					changed = true
				}
				if !a.nullableID[s.NT()] {
					break
				}
			}
		}
	}
}

// firstOfRestInto accumulates FIRST(form) into row, reporting whether the
// whole form is nullable.
func (a *Analysis) firstOfRestInto(row []uint64, form []grammar.SymID) (nullable, changed bool) {
	for _, s := range form {
		if s.IsT() {
			return false, setBit(row, int(s.Term()))
		}
		if orRow(row, a.firstRow[s.NT()]) {
			changed = true
		}
		if !a.nullableID[s.NT()] {
			return false, changed
		}
	}
	return true, changed
}

func (a *Analysis) computeFollow() {
	c := a.c
	if start := c.Start(); c.HasNTID(start) {
		setBit(a.followRow[start], a.eofCol)
	}
	changed := true
	for changed {
		changed = false
		for i := 0; i < len(c.Grammar().Prods); i++ {
			rhs := c.Rhs(i)
			lhsRow := a.followRow[c.Lhs(i)]
			for j, s := range rhs {
				if !s.IsNT() {
					continue
				}
				row := a.followRow[s.NT()]
				nullable, ch := a.firstOfRestInto(row, rhs[j+1:])
				if ch {
					changed = true
				}
				if nullable {
					if orRow(row, lhsRow) {
						changed = true
					}
				}
			}
		}
	}
}

// materialize builds the string-map views of the dense tables: the public
// API the front ends, LL(1) checker, and tests consume. Engines never read
// these on the hot path.
func (a *Analysis) materialize() {
	c := a.c
	a.nullable = make(map[string]bool)
	a.first = make(map[string]map[string]bool, len(a.G.Nonterminals()))
	a.follow = make(map[string]map[string]bool, len(a.G.Nonterminals()))
	for id := grammar.NTID(0); int(id) < c.NumNTs(); id++ {
		if a.nullableID[id] {
			a.nullable[c.NTName(id)] = true
		}
	}
	for _, nt := range a.G.Nonterminals() {
		id, _ := c.NTIDOf(nt)
		first := make(map[string]bool)
		a.addRowNames(first, a.firstRow[id])
		follow := make(map[string]bool)
		a.addRowNames(follow, a.followRow[id])
		if hasBit(a.followRow[id], a.eofCol) {
			follow[EOF] = true
		}
		a.first[nt] = first
		a.follow[nt] = follow
	}
}

func (a *Analysis) computeCallSites() {
	for i, p := range a.G.Prods {
		for j, s := range p.Rhs {
			if s.IsNT() {
				a.callSites[s.Name] = append(a.callSites[s.Name], CallSite{Prod: i, Pos: j})
			}
		}
	}
}

// computeLeftRecursion builds the "nullable-left-corner" graph — an edge
// X → Y exists when some production X → αYβ has nullable α — and marks every
// nonterminal that lies on a cycle through itself, recording a witness.
// It stays on names: it runs once per session, and its job is to produce
// human-readable witnesses.
func (a *Analysis) computeLeftRecursion() {
	edges := make(map[string][]string)
	for _, p := range a.G.Prods {
		for i, s := range p.Rhs {
			if s.IsT() {
				break
			}
			edges[p.Lhs] = append(edges[p.Lhs], s.Name)
			if !a.NullableForm(p.Rhs[i : i+1]) {
				break
			}
		}
	}
	for _, nt := range a.G.Nonterminals() {
		if cycle := findCycle(edges, nt); cycle != nil {
			a.leftRec[nt] = true
			a.cycles[nt] = cycle
		}
	}
}

// findCycle searches for a path start → ... → start in edges, returning it
// (with start at both ends) or nil.
func findCycle(edges map[string][]string, start string) []string {
	// DFS from each successor of start, looking for start.
	type frame struct {
		node string
		next int
	}
	seen := map[string]bool{}
	var stack []frame
	push := func(n string) { stack = append(stack, frame{node: n}) }
	parent := map[string]string{}
	for _, succ := range edges[start] {
		if succ == start {
			return []string{start, start}
		}
		if !seen[succ] {
			seen[succ] = true
			parent[succ] = start
			push(succ)
		}
	}
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		succs := edges[top.node]
		if top.next >= len(succs) {
			stack = stack[:len(stack)-1]
			continue
		}
		n := succs[top.next]
		top.next++
		if n == start {
			// Reconstruct start → ... → top.node → start.
			var rev []string
			for cur := top.node; cur != start; cur = parent[cur] {
				rev = append(rev, cur)
			}
			path := []string{start}
			for i := len(rev) - 1; i >= 0; i-- {
				path = append(path, rev[i])
			}
			return append(path, start)
		}
		if !seen[n] {
			seen[n] = true
			parent[n] = top.node
			push(n)
		}
	}
	return nil
}

// Reachable returns the nonterminals reachable from the start symbol.
func (a *Analysis) Reachable() map[string]bool {
	out := map[string]bool{}
	if !a.G.HasNT(a.G.Start) {
		return out
	}
	work := []string{a.G.Start}
	out[a.G.Start] = true
	for len(work) > 0 {
		nt := work[len(work)-1]
		work = work[:len(work)-1]
		for _, rhs := range a.G.RhssFor(nt) {
			for _, s := range rhs {
				if s.IsNT() && !out[s.Name] {
					out[s.Name] = true
					work = append(work, s.Name)
				}
			}
		}
	}
	return out
}

// Productive returns the nonterminals that derive at least one (finite)
// terminal word.
func (a *Analysis) Productive() map[string]bool {
	out := map[string]bool{}
	changed := true
	for changed {
		changed = false
		for _, p := range a.G.Prods {
			if out[p.Lhs] {
				continue
			}
			ok := true
			for _, s := range p.Rhs {
				if s.IsNT() && !out[s.Name] {
					ok = false
					break
				}
			}
			if ok {
				out[p.Lhs] = true
				changed = true
			}
		}
	}
	return out
}

// SortedSet renders a terminal set deterministically, for tests and
// diagnostics.
func SortedSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
