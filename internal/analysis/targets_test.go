package analysis

import (
	"strings"
	"testing"

	"costar/internal/grammar"
)

func TestTargetsFig2(t *testing.T) {
	g := grammar.MustParseBNF(`S -> A c | A d ; A -> a A | b`)
	tg := NewTargets(g)
	// A occurs before c, before d, and at the end of "a A"; the trailing
	// occurrence chases S's call sites (none) — so exactly two targets.
	got := tg.For("A")
	if len(got) != 2 {
		t.Fatalf("targets(A) = %v", got)
	}
	if got[0].Lhs != "S" || grammar.SymbolsString(got[0].Rest) != "c" {
		t.Errorf("targets(A)[0] = %v", got[0])
	}
	if got[1].Lhs != "S" || grammar.SymbolsString(got[1].Rest) != "d" {
		t.Errorf("targets(A)[1] = %v", got[1])
	}
	// A at the end of "a A" chains to A's enclosing lhs A (already seen)
	// and to S; S never occurs in an RHS, so A cannot finish... except via
	// the chain A ← end of A ← ... S is the start: the trailing A in
	// "a A" belongs to A itself, and S -> A c ends with c, so no.
	if tg.CanFinish("A") {
		t.Error("A should not be able to finish the parse (c/d always follow)")
	}
	if !tg.CanFinish("S") {
		t.Error("the start symbol can always finish")
	}
	if tg.For("S") != nil && len(tg.For("S")) != 0 {
		t.Errorf("targets(S) = %v, want none", tg.For("S"))
	}
}

func TestTargetsEmptyRemainderChaining(t *testing.T) {
	// X ends P's rule; P ends Q's rule; Q occurs before t in S.
	g := grammar.MustParseBNF(`
		S -> Q t ;
		Q -> a P ;
		P -> b X ;
		X -> x
	`)
	tg := NewTargets(g)
	got := tg.For("X")
	if len(got) != 1 || got[0].Lhs != "S" || grammar.SymbolsString(got[0].Rest) != "t" {
		t.Fatalf("targets(X) = %v, want [S: t]", got)
	}
	if tg.CanFinish("X") {
		t.Error("X cannot finish: t always follows via the chain")
	}
}

func TestCanFinishChain(t *testing.T) {
	g := grammar.MustParseBNF(`
		S -> a Q ;
		Q -> b P ;
		P -> x
	`)
	tg := NewTargets(g)
	for _, nt := range []string{"S", "Q", "P"} {
		if !tg.CanFinish(nt) {
			t.Errorf("CanFinish(%s) = false, want true", nt)
		}
	}
}

func TestTargetsCyclicEmptyRemainders(t *testing.T) {
	// A ends B's rule and B ends A's rule: chasing must terminate and
	// collect the non-empty continuations from both.
	g := grammar.MustParseBNF(`
		S -> A x | B y ;
		A -> a B ;
		B -> b A | c
	`)
	tg := NewTargets(g)
	a := tg.For("A")
	// A occurs: end of "b A" (chase B: B occurs before y in S, end of
	// "a B" → chase A: A occurs before x in S). Targets: S:x, S:y.
	var rendered []string
	for _, rt := range a {
		rendered = append(rendered, rt.String())
	}
	joined := strings.Join(rendered, "; ")
	if !strings.Contains(joined, "S: x") || !strings.Contains(joined, "S: y") {
		t.Errorf("targets(A) = %s", joined)
	}
	if tg.CanFinish("A") || tg.CanFinish("B") {
		t.Error("neither A nor B can finish (x or y always follows)")
	}
	if !strings.Contains(tg.DebugString(), "A (finish=false)") {
		t.Errorf("DebugString:\n%s", tg.DebugString())
	}
}

func TestTargetsSelfRecursion(t *testing.T) {
	// List -> Item List | ε-style right recursion: the trailing List
	// occurrence chains to List's own call sites.
	g := grammar.MustParseBNF(`
		S -> '[' List ']' ;
		List -> Item List | %empty ;
		Item -> i
	`)
	tg := NewTargets(g)
	got := tg.For("List")
	if len(got) != 1 || got[0].Lhs != "S" || grammar.SymbolsString(got[0].Rest) != "']'" {
		t.Fatalf("targets(List) = %v", got)
	}
	item := tg.For("Item")
	if len(item) != 1 || item[0].Lhs != "List" {
		t.Fatalf("targets(Item) = %v", item)
	}
}
