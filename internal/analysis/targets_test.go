package analysis

import (
	"strings"
	"testing"

	"costar/internal/grammar"
)

// ntid resolves a nonterminal name for tests; the name must be interned.
func ntid(g *grammar.Grammar, name string) grammar.NTID {
	id, ok := g.Compiled().NTIDOf(name)
	if !ok {
		panic("test nonterminal not interned: " + name)
	}
	return id
}

func restString(g *grammar.Grammar, rt ReturnTarget) string {
	return g.Compiled().FormString(rt.Rest)
}

func TestTargetsFig2(t *testing.T) {
	g := grammar.MustParseBNF(`S -> A c | A d ; A -> a A | b`)
	c := g.Compiled()
	tg := NewTargets(g)
	// A occurs before c, before d, and at the end of "a A"; the trailing
	// occurrence chases S's call sites (none) — so exactly two targets.
	got := tg.For(ntid(g, "A"))
	if len(got) != 2 {
		t.Fatalf("targets(A) = %v", got)
	}
	if c.NTName(got[0].Lhs) != "S" || restString(g, got[0]) != "c" {
		t.Errorf("targets(A)[0] = %v", got[0].StringWith(c))
	}
	if c.NTName(got[1].Lhs) != "S" || restString(g, got[1]) != "d" {
		t.Errorf("targets(A)[1] = %v", got[1].StringWith(c))
	}
	// Rest must alias the compiled production arrays so that the address of
	// its first element pins the grammar position (config dedup relies on it).
	if &got[0].Rest[0] != &c.Rhs(got[0].Prod)[got[0].Dot+1] {
		t.Error("Rest does not alias the compiled production array")
	}
	if tg.CanFinish(ntid(g, "A")) {
		t.Error("A should not be able to finish the parse (c/d always follow)")
	}
	if !tg.CanFinish(ntid(g, "S")) {
		t.Error("the start symbol can always finish")
	}
	if len(tg.For(ntid(g, "S"))) != 0 {
		t.Errorf("targets(S) = %v, want none", tg.For(ntid(g, "S")))
	}
	// Out-of-range IDs: no targets, cannot finish, no panic.
	if tg.For(grammar.NoNT) != nil || tg.For(999) != nil {
		t.Error("out-of-range NTID should have no targets")
	}
	if tg.CanFinish(grammar.NoNT) || tg.CanFinish(999) {
		t.Error("out-of-range NTID should not finish")
	}
}

func TestTargetsEmptyRemainderChaining(t *testing.T) {
	// X ends P's rule; P ends Q's rule; Q occurs before t in S.
	g := grammar.MustParseBNF(`
		S -> Q t ;
		Q -> a P ;
		P -> b X ;
		X -> x
	`)
	tg := NewTargets(g)
	got := tg.For(ntid(g, "X"))
	if len(got) != 1 || g.Compiled().NTName(got[0].Lhs) != "S" || restString(g, got[0]) != "t" {
		t.Fatalf("targets(X) = %v, want [S: t]", got)
	}
	if tg.CanFinish(ntid(g, "X")) {
		t.Error("X cannot finish: t always follows via the chain")
	}
}

func TestCanFinishChain(t *testing.T) {
	g := grammar.MustParseBNF(`
		S -> a Q ;
		Q -> b P ;
		P -> x
	`)
	tg := NewTargets(g)
	for _, nt := range []string{"S", "Q", "P"} {
		if !tg.CanFinish(ntid(g, nt)) {
			t.Errorf("CanFinish(%s) = false, want true", nt)
		}
	}
}

func TestTargetsCyclicEmptyRemainders(t *testing.T) {
	// A ends B's rule and B ends A's rule: chasing must terminate and
	// collect the non-empty continuations from both.
	g := grammar.MustParseBNF(`
		S -> A x | B y ;
		A -> a B ;
		B -> b A | c
	`)
	tg := NewTargets(g)
	a := tg.For(ntid(g, "A"))
	// A occurs: end of "b A" (chase B: B occurs before y in S, end of
	// "a B" → chase A: A occurs before x in S). Targets: S:x, S:y.
	var rendered []string
	for _, rt := range a {
		rendered = append(rendered, rt.StringWith(g.Compiled()))
	}
	joined := strings.Join(rendered, "; ")
	if !strings.Contains(joined, "S: x") || !strings.Contains(joined, "S: y") {
		t.Errorf("targets(A) = %s", joined)
	}
	if tg.CanFinish(ntid(g, "A")) || tg.CanFinish(ntid(g, "B")) {
		t.Error("neither A nor B can finish (x or y always follows)")
	}
	if !strings.Contains(tg.DebugString(), "A (finish=false)") {
		t.Errorf("DebugString:\n%s", tg.DebugString())
	}
}

func TestTargetsSelfRecursion(t *testing.T) {
	// List -> Item List | ε-style right recursion: the trailing List
	// occurrence chains to List's own call sites.
	g := grammar.MustParseBNF(`
		S -> '[' List ']' ;
		List -> Item List | %empty ;
		Item -> i
	`)
	tg := NewTargets(g)
	got := tg.For(ntid(g, "List"))
	if len(got) != 1 || g.Compiled().NTName(got[0].Lhs) != "S" || restString(g, got[0]) != "']'" {
		t.Fatalf("targets(List) = %v", got)
	}
	item := tg.For(ntid(g, "Item"))
	if len(item) != 1 || g.Compiled().NTName(item[0].Lhs) != "List" {
		t.Fatalf("targets(Item) = %v", item)
	}
}
