package analysis

import (
	"reflect"
	"testing"

	"costar/internal/grammar"
)

func mk(src string) *Analysis {
	return New(grammar.MustParseBNF(src))
}

func TestNullable(t *testing.T) {
	a := mk(`
		S -> A B c ;
		A -> %empty | a ;
		B -> A A | b
	`)
	cases := map[string]bool{"S": false, "A": true, "B": true}
	for nt, want := range cases {
		if got := a.Nullable(nt); got != want {
			t.Errorf("Nullable(%s) = %v, want %v", nt, got, want)
		}
	}
	if a.NullableForm([]grammar.Symbol{grammar.NT("A"), grammar.NT("B")}) != true {
		t.Error("NullableForm(A B) should be true")
	}
	if a.NullableForm([]grammar.Symbol{grammar.NT("A"), grammar.T("c")}) {
		t.Error("NullableForm with terminal should be false")
	}
	if !a.NullableForm(nil) {
		t.Error("NullableForm(ε) should be true")
	}
}

func TestFirst(t *testing.T) {
	a := mk(`
		S -> A B c ;
		A -> %empty | a ;
		B -> A A | b
	`)
	want := map[string][]string{
		"A": {"a"},
		"B": {"a", "b"},
		"S": {"a", "b", "c"},
	}
	for nt, ts := range want {
		if got := SortedSet(a.First(nt)); !reflect.DeepEqual(got, ts) {
			t.Errorf("First(%s) = %v, want %v", nt, got, ts)
		}
	}
	form := []grammar.Symbol{grammar.NT("A"), grammar.T("x")}
	if got := SortedSet(a.FirstOfForm(form)); !reflect.DeepEqual(got, []string{"a", "x"}) {
		t.Errorf("FirstOfForm(A x) = %v", got)
	}
	if got := a.FirstOfForm(nil); len(got) != 0 {
		t.Errorf("FirstOfForm(ε) = %v", got)
	}
}

func TestFollow(t *testing.T) {
	a := mk(`
		S -> A B c ;
		A -> %empty | a ;
		B -> A A | b
	`)
	// FOLLOW(S) = {EOF}; FOLLOW(B) = {c}; A appears before B and inside B:
	// FOLLOW(A) ⊇ FIRST(B)∪{c} (B nullable) and FOLLOW(B)={c}.
	if got := SortedSet(a.Follow("S")); !reflect.DeepEqual(got, []string{EOF}) {
		t.Errorf("Follow(S) = %v", got)
	}
	if got := SortedSet(a.Follow("B")); !reflect.DeepEqual(got, []string{"c"}) {
		t.Errorf("Follow(B) = %v", got)
	}
	got := a.Follow("A")
	for _, tname := range []string{"a", "b", "c"} {
		if !got[tname] {
			t.Errorf("Follow(A) missing %q: %v", tname, SortedSet(got))
		}
	}
}

func TestLeftRecursionDirect(t *testing.T) {
	a := mk(`E -> E plus T | T ; T -> num`)
	if !a.LeftRecursive("E") {
		t.Error("E should be left-recursive")
	}
	if a.LeftRecursive("T") {
		t.Error("T should not be left-recursive")
	}
	cyc := a.LeftRecursionCycle("E")
	if len(cyc) != 2 || cyc[0] != "E" || cyc[1] != "E" {
		t.Errorf("cycle = %v", cyc)
	}
	if got := a.LeftRecursiveNTs(); !reflect.DeepEqual(got, []string{"E"}) {
		t.Errorf("LeftRecursiveNTs = %v", got)
	}
	if !a.HasLeftRecursion() {
		t.Error("HasLeftRecursion false")
	}
}

func TestLeftRecursionIndirect(t *testing.T) {
	a := mk(`
		A -> B x | a ;
		B -> C y | b ;
		C -> A z | c
	`)
	for _, nt := range []string{"A", "B", "C"} {
		if !a.LeftRecursive(nt) {
			t.Errorf("%s should be left-recursive (indirect)", nt)
		}
	}
	cyc := a.LeftRecursionCycle("A")
	if len(cyc) != 4 || cyc[0] != "A" || cyc[3] != "A" {
		t.Errorf("cycle witness = %v", cyc)
	}
}

func TestLeftRecursionHiddenByNullable(t *testing.T) {
	// A → N A x is left-recursive because N is nullable.
	a := mk(`
		A -> N A x | a ;
		N -> %empty | n
	`)
	if !a.LeftRecursive("A") {
		t.Error("hidden left recursion (nullable prefix) not detected")
	}
	// With a non-nullable prefix it is not left recursion.
	b := mk(`
		A -> N A x | a ;
		N -> n
	`)
	if b.LeftRecursive("A") {
		t.Error("non-nullable prefix misreported as left recursion")
	}
}

func TestNoLeftRecursionFig2(t *testing.T) {
	g := grammar.MustParseBNF(`S -> A c | A d ; A -> a A | b`)
	if got := FindLeftRecursion(g); len(got) != 0 {
		t.Errorf("fig2 reported left-recursive: %v", got)
	}
}

func TestCallSites(t *testing.T) {
	a := mk(`S -> A c | A d ; A -> a A | b`)
	sites := a.CallSites("A")
	want := []CallSite{{Prod: 0, Pos: 0}, {Prod: 1, Pos: 0}, {Prod: 2, Pos: 1}}
	if !reflect.DeepEqual(sites, want) {
		t.Errorf("CallSites(A) = %v, want %v", sites, want)
	}
	if got := a.CallSites("S"); got != nil {
		t.Errorf("CallSites(S) = %v, want none", got)
	}
}

func TestReachableProductive(t *testing.T) {
	a := mk(`
		S -> A ;
		A -> a ;
		Dead -> d ;
		Loop -> Loop x
	`)
	r := a.Reachable()
	if !r["S"] || !r["A"] || r["Dead"] || r["Loop"] {
		t.Errorf("Reachable = %v", r)
	}
	p := a.Productive()
	if !p["S"] || !p["A"] || !p["Dead"] || p["Loop"] {
		t.Errorf("Productive = %v", p)
	}
}

func TestSelfCycleViaTwoSteps(t *testing.T) {
	// A → B, B → A: both are left-recursive, cycles of length 3 (A B A).
	a := mk(`
		A -> B | a ;
		B -> A
	`)
	if !a.LeftRecursive("A") || !a.LeftRecursive("B") {
		t.Error("mutual unit cycle not detected")
	}
	cyc := a.LeftRecursionCycle("A")
	if len(cyc) != 3 || cyc[0] != "A" || cyc[1] != "B" || cyc[2] != "A" {
		t.Errorf("cycle = %v", cyc)
	}
}

func TestEOFIsDisjoint(t *testing.T) {
	a := mk(`S -> a`)
	for _, term := range a.G.Terminals() {
		if term == EOF {
			t.Fatalf("grammar terminal collides with EOF sentinel")
		}
	}
}

func TestXMLStyleRuleAnalysis(t *testing.T) {
	// The paper's XML elt rule (Section 6.1): both alternatives start with
	// '<' Name attribute*, so FIRST sets alone cannot decide — exactly why
	// the grammar is not LL(1). Here we just check the analysis facts that
	// the LL(1) baseline uses to report the conflict.
	a := mk(`
		Elt -> lt Name Attrs gt Content lt slash Name gt | lt Name Attrs slashgt ;
		Attrs -> Attr Attrs | %empty ;
		Attr -> Name eq String ;
		Content -> text | %empty ;
		Name -> name ;
		String -> string
	`)
	f0 := a.FirstOfForm(a.G.RhssFor("Elt")[0])
	f1 := a.FirstOfForm(a.G.RhssFor("Elt")[1])
	if !f0["lt"] || !f1["lt"] {
		t.Errorf("both alternatives should begin with lt: %v / %v", SortedSet(f0), SortedSet(f1))
	}
}
