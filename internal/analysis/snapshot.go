package analysis

// Snapshot/import layer for ahead-of-time artifacts (internal/artifact).
// The fixpoint results (NULLABLE, FIRST, FOLLOW) are the expensive,
// grammar-global part of an Analysis; a Snapshot captures exactly those
// dense tables so an artifact load can skip the fixpoint iteration. The
// derived views (string maps, call sites, left-recursion witnesses) are
// cheap and deterministic, so the import path recomputes them rather than
// trusting serialized copies — fewer bytes to verify, and the imported
// Analysis is reflect.DeepEqual-identical to a source-computed one by
// construction of everything outside the snapshot.
//
// Targets get the same treatment with one extra subtlety: a ReturnTarget's
// Rest slice must alias the compiled production array (prediction's config
// dedup keys on the address of Rest's first element), so the snapshot
// stores grammar positions (Prod, Dot) and the import rebuilds each Rest
// as c.Rhs(Prod)[Dot+1:] — the exact same backing array a source-side
// computation would alias.

import (
	"fmt"

	"costar/internal/grammar"
)

// Snapshot is the dense-table state of an Analysis: the fixpoint outputs,
// in NTID/TermID coordinates. Rows are flattened row-major (NTID × word).
type Snapshot struct {
	// Nullable is nullableID: NTID → derives ε.
	Nullable []bool
	// First and Follow are the bitset rows, flattened: row n occupies
	// words [n*RowWords, (n+1)*RowWords). Columns are TermIDs; column
	// NumTerms is the virtual EOF terminal.
	First  []uint64
	Follow []uint64
	// RowWords is the per-row word count, (NumTerms+1+63)/64.
	RowWords int
}

// Snapshot captures the fixpoint tables. The returned slices are copies.
func (a *Analysis) Snapshot() Snapshot {
	n := len(a.nullableID)
	s := Snapshot{
		Nullable: append([]bool(nil), a.nullableID...),
		First:    make([]uint64, n*a.rowWords),
		Follow:   make([]uint64, n*a.rowWords),
		RowWords: a.rowWords,
	}
	for i := 0; i < n; i++ {
		copy(s.First[i*a.rowWords:], a.firstRow[i])
		copy(s.Follow[i*a.rowWords:], a.followRow[i])
	}
	return s
}

// FromSnapshot rebuilds an Analysis for g from a fixpoint snapshot,
// skipping the fixpoint iteration. The snapshot's dimensions are checked
// against the compiled grammar; mismatches (a snapshot taken from a
// different grammar, or corrupted) are rejected. The derived views are
// recomputed, so the result is deep-equal to New(g) whenever the snapshot
// is genuine.
func FromSnapshot(g *grammar.Grammar, s Snapshot) (*Analysis, error) {
	c := g.Compiled()
	n := c.NumNTs()
	eofCol := c.NumTerms()
	rowWords := (eofCol + 1 + 63) / 64
	if s.RowWords != rowWords {
		return nil, fmt.Errorf("analysis: snapshot row width %d, grammar needs %d", s.RowWords, rowWords)
	}
	if len(s.Nullable) != n {
		return nil, fmt.Errorf("analysis: snapshot has %d nullable entries, grammar has %d nonterminals", len(s.Nullable), n)
	}
	if len(s.First) != n*rowWords || len(s.Follow) != n*rowWords {
		return nil, fmt.Errorf("analysis: snapshot FIRST/FOLLOW sized %d/%d words, want %d", len(s.First), len(s.Follow), n*rowWords)
	}
	a := &Analysis{
		G:         g,
		c:         c,
		callSites: make(map[string][]CallSite),
		leftRec:   make(map[string]bool),
		cycles:    make(map[string][]string),
		eofCol:    eofCol,
		rowWords:  rowWords,
	}
	a.nullableID = append([]bool(nil), s.Nullable...)
	a.firstRow = newRows(n, rowWords)
	a.followRow = newRows(n, rowWords)
	for i := 0; i < n; i++ {
		copy(a.firstRow[i], s.First[i*rowWords:(i+1)*rowWords])
		copy(a.followRow[i], s.Follow[i*rowWords:(i+1)*rowWords])
	}
	a.materialize()
	a.computeCallSites()
	a.computeLeftRecursion()
	return a, nil
}

// TargetsSnapshot is the serializable form of a Targets table: per
// nonterminal, the grammar positions of its stable return targets, plus
// the canFinish column and the start symbol the table was computed for.
type TargetsSnapshot struct {
	// Start is the parse start symbol the targets were computed against.
	Start string
	// Prods and Dots hold the flattened (Prod, Dot) position pairs;
	// Offsets[n]..Offsets[n+1] index the pairs belonging to NTID n
	// (len(Offsets) == NumNTs+1).
	Prods   []int32
	Dots    []int32
	Offsets []int32
	// CanFinish is the per-NTID "pop chain can end the parse" column.
	CanFinish []bool
}

// Snapshot captures the targets table as grammar positions. start must be
// the start symbol the table was computed for (the parser tracks this; the
// Targets value itself does not retain it).
func (t *Targets) Snapshot(start string) TargetsSnapshot {
	s := TargetsSnapshot{
		Start:     start,
		Offsets:   make([]int32, 1, len(t.byNT)+1),
		CanFinish: append([]bool(nil), t.canFinish...),
	}
	for _, targets := range t.byNT {
		for _, rt := range targets {
			s.Prods = append(s.Prods, int32(rt.Prod))
			s.Dots = append(s.Dots, int32(rt.Dot))
		}
		s.Offsets = append(s.Offsets, int32(len(s.Prods)))
	}
	return s
}

// TargetsFromSnapshot rebuilds a Targets table over g's compiled grammar.
// Every position is bounds-checked and each Rest is reconstructed as a
// true suffix of the compiled production array, restoring the aliasing
// invariant prediction depends on. Malformed snapshots yield an error.
func TargetsFromSnapshot(g *grammar.Grammar, s TargetsSnapshot) (*Targets, error) {
	c := g.Compiled()
	n := c.NumNTs()
	if len(s.Offsets) != n+1 {
		return nil, fmt.Errorf("analysis: targets snapshot has %d offsets, grammar needs %d", len(s.Offsets), n+1)
	}
	if len(s.CanFinish) != n {
		return nil, fmt.Errorf("analysis: targets snapshot has %d canFinish entries, grammar has %d nonterminals", len(s.CanFinish), n)
	}
	if len(s.Prods) != len(s.Dots) {
		return nil, fmt.Errorf("analysis: targets snapshot has %d prods but %d dots", len(s.Prods), len(s.Dots))
	}
	if s.Offsets[0] != 0 || int(s.Offsets[n]) != len(s.Prods) {
		return nil, fmt.Errorf("analysis: targets snapshot offsets do not span the position table")
	}
	nProds := len(c.Grammar().Prods)
	t := &Targets{
		c:         c,
		byNT:      make([][]ReturnTarget, n),
		canFinish: append([]bool(nil), s.CanFinish...),
	}
	for nt := 0; nt < n; nt++ {
		lo, hi := s.Offsets[nt], s.Offsets[nt+1]
		if lo > hi {
			return nil, fmt.Errorf("analysis: targets snapshot offsets not monotone at nonterminal %d", nt)
		}
		if lo == hi {
			continue
		}
		targets := make([]ReturnTarget, 0, hi-lo)
		for k := lo; k < hi; k++ {
			prod, dot := int(s.Prods[k]), int(s.Dots[k])
			if prod < 0 || prod >= nProds {
				return nil, fmt.Errorf("analysis: targets snapshot: production %d out of range", prod)
			}
			rhs := c.Rhs(prod)
			// A return target's Rest is the remainder after an occurrence,
			// and targets with empty remainders are never materialized.
			if dot < 0 || dot+1 >= len(rhs) {
				return nil, fmt.Errorf("analysis: targets snapshot: dot %d out of range for production %d", dot, prod)
			}
			targets = append(targets, ReturnTarget{
				Lhs:  c.Lhs(prod),
				Rest: rhs[dot+1:],
				Prod: prod,
				Dot:  dot,
			})
		}
		t.byNT[nt] = targets
	}
	return t, nil
}
