package g4

import (
	"strings"
	"testing"

	"costar/internal/lexer"
	"costar/internal/parser"
)

// newLexer compiles a parsed file's lexical spec.
func newLexer(f *File) (*lexer.Lexer, error) { return lexer.New(f.Lexer) }

// xmlModesG4 is an XML grammar using lexer modes the way the real
// grammars-v4 XML grammar does: '<' pushes the INSIDE mode, where '=',
// names and strings are tokenized; '>' and '/>' pop back to content mode.
const xmlModesG4 = `
grammar XMLModes;

document : element ;
element : OPEN NAME attribute* CLOSE content OPEN SLASH NAME CLOSE
        | OPEN NAME attribute* SLASHCLOSE ;
attribute : NAME EQ STRING ;
content : chunk* ;
chunk : element | TEXT ;

COMMENT : '<!--' (~[\-] | '-' ~[\-])* '-->' -> skip ;
OPEN : '<' -> pushMode(INSIDE) ;
TEXT : ~[<&]+ ;

mode INSIDE ;
CLOSE : '>' -> popMode ;
SLASHCLOSE : '/>' -> popMode ;
SLASH : '/' ;
EQ : '=' ;
STRING : '"' ~[<"]* '"' ;
NAME : [a-zA-Z_:] [a-zA-Z0-9_:.\-]* ;
S : [ \t\r\n]+ -> skip ;
`

func TestLexerModesXML(t *testing.T) {
	f, g, l := pipeline(t, xmlModesG4)
	if f.Lexer.Rules[1].Push != "INSIDE" {
		t.Fatalf("OPEN rule actions = %+v", f.Lexer.Rules[1])
	}
	// With modes, free text with '=' and quotes is fine — exactly what the
	// modeless benchmark lexer cannot do.
	src := `<doc version="1.0"><p>text with = signs and "quotes" works</p><br/></doc>`
	toks, err := l.Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, tk := range toks {
		names = append(names, tk.Terminal)
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "OPEN NAME NAME EQ STRING CLOSE") {
		t.Errorf("tokens = %s", joined)
	}
	p := parser.MustNew(g, parser.Options{CheckInvariants: true})
	if res := p.Parse(toks); res.Kind != parser.Unique {
		t.Fatalf("parse = %s", res)
	}
	// TEXT must contain the raw '=' and quotes.
	found := false
	for _, tk := range toks {
		if tk.Terminal == "TEXT" && strings.Contains(tk.Literal, `= signs and "quotes"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("content text mangled: %v", toks)
	}
}

func TestModesNested(t *testing.T) {
	// Nested elements push/pop repeatedly; the mode stack must track depth.
	_, g, l := pipeline(t, xmlModesG4)
	src := `<a><b><c/></b>tail</a>`
	toks, err := l.Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	p := parser.MustNew(g, parser.Options{})
	if res := p.Parse(toks); res.Kind != parser.Unique {
		t.Fatalf("parse = %s", res)
	}
}

func TestModesErrors(t *testing.T) {
	// pushMode to an undefined mode is rejected at lexer build time.
	_, err := Parse(`
		grammar M;
		s : A ;
		A : 'a' -> pushMode(NOWHERE) ;
	`)
	if err == nil {
		// The g4 parse succeeds; the lexer build must fail.
		f := MustParse(`
			grammar M;
			s : A ;
			A : 'a' -> pushMode(NOWHERE) ;
		`)
		if _, lerr := newLexer(f); lerr == nil {
			t.Error("undefined mode target accepted")
		}
	}
	// Parser rules inside a mode section are rejected.
	if _, err := Parse(`
		grammar M;
		s : A ;
		A : 'a' ;
		mode X ;
		t : 'b' ;
	`); err == nil || !strings.Contains(err.Error(), "inside mode") {
		t.Errorf("parser rule inside mode: %v", err)
	}
	// Unbalanced popMode fails at scan time with a position.
	f := MustParse(`
		grammar M;
		s : A B ;
		A : 'a' -> popMode ;
		B : 'b' ;
	`)
	l, err := newLexer(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Tokenize("ab"); err == nil {
		t.Error("popMode on empty stack accepted")
	}
}

func TestCombinedActions(t *testing.T) {
	// "-> skip, popMode" in one action list.
	f := MustParse(`
		grammar M;
		s : A T ;
		A : 'a' -> pushMode(IN) ;
		T : 'x' ;
		mode IN ;
		END : ']' -> skip, popMode ;
	`)
	var end *int
	for i, r := range f.Lexer.Rules {
		if r.Name == "END" {
			i := i
			end = &i
		}
	}
	if end == nil {
		t.Fatal("END rule missing")
	}
	r := f.Lexer.Rules[*end]
	if !r.Skip || !r.Pop || r.Mode != "IN" {
		t.Errorf("END rule = %+v", r)
	}
}
