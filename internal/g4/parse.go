package g4

import (
	"fmt"
	"unicode/utf8"

	"costar/internal/ebnf"
	"costar/internal/grammar"
	"costar/internal/lexer"
	"costar/internal/rx"
)

// fileParser consumes the token stream produced by scan.
type fileParser struct {
	toks []g4Tok
	pos  int
	// implicit tokens: inline 'literals' seen in parser rules, in order of
	// first appearance (they become the highest-priority lexer rules).
	litOrder []string
	litSeen  map[string]bool
}

func (p *fileParser) noteLiteral(text string) {
	if p.litSeen == nil {
		p.litSeen = map[string]bool{}
	}
	if !p.litSeen[text] {
		p.litSeen[text] = true
		p.litOrder = append(p.litOrder, text)
	}
}

func (p *fileParser) peek() (g4Tok, bool) {
	if p.pos >= len(p.toks) {
		return g4Tok{}, false
	}
	return p.toks[p.pos], true
}

func (p *fileParser) at(kind tokKind, text string) bool {
	t, ok := p.peek()
	return ok && t.kind == kind && (text == "" || t.text == text)
}

func (p *fileParser) take() g4Tok {
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *fileParser) expect(kind tokKind, text string) (g4Tok, error) {
	t, ok := p.peek()
	if !ok {
		return g4Tok{}, fmt.Errorf("g4: unexpected end of file, expected %q", text)
	}
	if t.kind != kind || (text != "" && t.text != text) {
		return g4Tok{}, fmt.Errorf("g4: line %d: expected %q, found %q", t.line, text, t.text)
	}
	return p.take(), nil
}

// rawRule is a rule before lexer/parser classification is applied.
type rawRule struct {
	name     string
	fragment bool
	skip     bool
	mode     string // lexer mode the rule belongs to ("" = default)
	pushMode string
	popMode  bool
	setMode  string
	line     int
	// exactly one of these is set, by name case:
	parserBody ebnf.Expr
	lexerBody  lexExpr
}

func isLexerRuleName(name string) bool {
	r, _ := utf8.DecodeRuneInString(name)
	return r >= 'A' && r <= 'Z'
}

func (p *fileParser) file() (*File, error) {
	if _, err := p.expect(tIdent, "grammar"); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(tIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ";"); err != nil {
		return nil, err
	}
	var rules []rawRule
	currentMode := ""
	for {
		if _, ok := p.peek(); !ok {
			break
		}
		// "mode NAME ;" switches the lexer mode for subsequent rules.
		if p.at(tIdent, "mode") && p.pos+2 < len(p.toks) &&
			p.toks[p.pos+1].kind == tIdent && p.toks[p.pos+2].kind == tPunct && p.toks[p.pos+2].text == ";" {
			p.take()
			currentMode = p.take().text
			p.take()
			continue
		}
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		if r.lexerBody != nil || r.fragment {
			r.mode = currentMode
		} else if currentMode != "" {
			return nil, fmt.Errorf("g4: line %d: parser rule %s inside mode %s", r.line, r.name, currentMode)
		}
		rules = append(rules, r)
	}
	return assemble(nameTok.text, rules, p.litOrder)
}

func (p *fileParser) rule() (rawRule, error) {
	var r rawRule
	if p.at(tIdent, "fragment") {
		p.take()
		r.fragment = true
	}
	nameTok, err := p.expect(tIdent, "")
	if err != nil {
		return r, err
	}
	r.name = nameTok.text
	r.line = nameTok.line
	if _, err := p.expect(tPunct, ":"); err != nil {
		return r, err
	}
	if isLexerRuleName(r.name) {
		body, err := p.lexAlt()
		if err != nil {
			return r, err
		}
		r.lexerBody = body
	} else {
		if r.fragment {
			return r, fmt.Errorf("g4: line %d: fragment on parser rule %s", r.line, r.name)
		}
		body, err := p.ebnfAlt()
		if err != nil {
			return r, err
		}
		r.parserBody = body
	}
	// Optional "-> action, action, ..." directives: skip, channel(X),
	// pushMode(X), popMode, mode(X).
	if p.at(tPunct, "->") {
		p.take()
		for {
			d, err := p.expect(tIdent, "")
			if err != nil {
				return r, err
			}
			arg := ""
			needArg := d.text == "channel" || d.text == "pushMode" || d.text == "mode"
			if needArg {
				if _, err := p.expect(tPunct, "("); err != nil {
					return r, err
				}
				a, err := p.expect(tIdent, "")
				if err != nil {
					return r, err
				}
				arg = a.text
				if _, err := p.expect(tPunct, ")"); err != nil {
					return r, err
				}
			}
			switch d.text {
			case "skip":
				r.skip = true
			case "channel":
				r.skip = true // hidden channels never reach the parser
			case "pushMode":
				r.pushMode = arg
			case "popMode":
				r.popMode = true
			case "mode":
				r.setMode = arg
			default:
				return r, fmt.Errorf("g4: line %d: unsupported action %q", d.line, d.text)
			}
			if !p.at(tPunct, ",") {
				break
			}
			p.take()
		}
	}
	if _, err := p.expect(tPunct, ";"); err != nil {
		return r, err
	}
	return r, nil
}

// ---------------------------------------------------------------------------
// Parser-rule bodies → EBNF
// ---------------------------------------------------------------------------

func (p *fileParser) ebnfAlt() (ebnf.Expr, error) {
	first, err := p.ebnfSeq()
	if err != nil {
		return nil, err
	}
	alts := []ebnf.Expr{first}
	for p.at(tPunct, "|") {
		p.take()
		e, err := p.ebnfSeq()
		if err != nil {
			return nil, err
		}
		alts = append(alts, e)
	}
	if len(alts) == 1 {
		return alts[0], nil
	}
	return ebnf.Alt{Alts: alts}, nil
}

func (p *fileParser) ebnfSeq() (ebnf.Expr, error) {
	var items []ebnf.Expr
	for {
		t, ok := p.peek()
		if !ok || t.kind == tPunct && (t.text == "|" || t.text == ";" || t.text == ")" || t.text == "->") {
			break
		}
		e, err := p.ebnfSuffixed()
		if err != nil {
			return nil, err
		}
		if e != nil { // EOF refs vanish
			items = append(items, e)
		}
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return ebnf.Seq{Items: items}, nil
}

func (p *fileParser) ebnfSuffixed() (ebnf.Expr, error) {
	e, err := p.ebnfElement()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tPunct, "*"):
			p.take()
			if e == nil {
				return nil, fmt.Errorf("g4: operator on EOF")
			}
			e = ebnf.Star{Inner: e}
		case p.at(tPunct, "+"):
			p.take()
			if e == nil {
				return nil, fmt.Errorf("g4: operator on EOF")
			}
			e = ebnf.Plus{Inner: e}
		case p.at(tPunct, "?"):
			p.take()
			if e == nil {
				return nil, fmt.Errorf("g4: operator on EOF")
			}
			e = ebnf.Opt{Inner: e}
		default:
			return e, nil
		}
	}
}

func (p *fileParser) ebnfElement() (ebnf.Expr, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("g4: unexpected end of file in rule body")
	}
	switch {
	case t.kind == tLit:
		p.take()
		p.noteLiteral(t.text)
		return ebnf.T{Name: t.text}, nil
	case t.kind == tIdent:
		p.take()
		if t.text == "EOF" {
			return nil, nil // CoStar requires full input anyway
		}
		if isLexerRuleName(t.text) {
			return ebnf.T{Name: t.text}, nil
		}
		return ebnf.NT{Name: t.text}, nil
	case t.kind == tPunct && t.text == "(":
		p.take()
		e, err := p.ebnfAlt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("g4: line %d: unexpected %q in parser rule", t.line, t.text)
	}
}

// ---------------------------------------------------------------------------
// Lexer-rule bodies → lexExpr → rx.Node
// ---------------------------------------------------------------------------

// lexExpr is the pre-resolution lexer-rule AST: rx.Node shapes plus
// fragment references.
type lexExpr interface{ isLexExpr() }

type lxNode struct{ n rx.Node }  // already an rx fragment (literal, class, any)
type lxRef struct{ name string } // fragment / token reference
type lxSeq struct{ items []lexExpr }
type lxAlt struct{ alts []lexExpr }
type lxStar struct{ inner lexExpr }
type lxPlus struct{ inner lexExpr }
type lxOpt struct{ inner lexExpr }
type lxNot struct{ inner lexExpr }

func (lxNode) isLexExpr() {}
func (lxRef) isLexExpr()  {}
func (lxSeq) isLexExpr()  {}
func (lxAlt) isLexExpr()  {}
func (lxStar) isLexExpr() {}
func (lxPlus) isLexExpr() {}
func (lxOpt) isLexExpr()  {}
func (lxNot) isLexExpr()  {}

func (p *fileParser) lexAlt() (lexExpr, error) {
	first, err := p.lexSeq()
	if err != nil {
		return nil, err
	}
	alts := []lexExpr{first}
	for p.at(tPunct, "|") {
		p.take()
		e, err := p.lexSeq()
		if err != nil {
			return nil, err
		}
		alts = append(alts, e)
	}
	if len(alts) == 1 {
		return alts[0], nil
	}
	return lxAlt{alts: alts}, nil
}

func (p *fileParser) lexSeq() (lexExpr, error) {
	var items []lexExpr
	for {
		t, ok := p.peek()
		if !ok || t.kind == tPunct && (t.text == "|" || t.text == ";" || t.text == ")" || t.text == "->") {
			break
		}
		e, err := p.lexSuffixed()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return lxSeq{items: items}, nil
}

func (p *fileParser) lexSuffixed() (lexExpr, error) {
	e, err := p.lexElement()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tPunct, "*"):
			p.take()
			e = lxStar{inner: e}
		case p.at(tPunct, "+"):
			p.take()
			e = lxPlus{inner: e}
		case p.at(tPunct, "?"):
			p.take()
			e = lxOpt{inner: e}
		default:
			return e, nil
		}
	}
}

func (p *fileParser) lexElement() (lexExpr, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("g4: unexpected end of file in lexer rule")
	}
	switch {
	case t.kind == tLit:
		p.take()
		// 'a'..'z' range
		if p.at(tPunct, "..") {
			p.take()
			hiTok, err := p.expect(tLit, "")
			if err != nil {
				return nil, err
			}
			lo, hi := singleRune(t.text), singleRune(hiTok.text)
			if lo < 0 || hi < 0 || hi < lo {
				return nil, fmt.Errorf("g4: line %d: bad range %q..%q", t.line, t.text, hiTok.text)
			}
			return lxNode{rx.Class{Ranges: []rx.Range{{Lo: lo, Hi: hi}}}}, nil
		}
		return lxNode{rx.Str(t.text)}, nil
	case t.kind == tClass:
		p.take()
		c, err := parseANTLRClass(t.text, t.line)
		if err != nil {
			return nil, err
		}
		return lxNode{c}, nil
	case t.kind == tIdent:
		p.take()
		if !isLexerRuleName(t.text) {
			return nil, fmt.Errorf("g4: line %d: parser rule %q referenced from lexer rule", t.line, t.text)
		}
		return lxRef{name: t.text}, nil
	case t.kind == tPunct && t.text == ".":
		p.take()
		return lxNode{rx.AnyRune()}, nil
	case t.kind == tPunct && t.text == "~":
		p.take()
		inner, err := p.lexElement()
		if err != nil {
			return nil, err
		}
		return lxNot{inner: inner}, nil
	case t.kind == tPunct && t.text == "(":
		p.take()
		e, err := p.lexAlt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("g4: line %d: unexpected %q in lexer rule", t.line, t.text)
	}
}

func singleRune(s string) rune {
	r, size := utf8.DecodeRuneInString(s)
	if size == 0 || size != len(s) {
		return -1
	}
	return r
}

// parseANTLRClass converts a raw [...] body (escapes intact) into rx.Class.
func parseANTLRClass(body string, line int) (rx.Class, error) {
	node, err := rx.Parse("[" + body + "]")
	if err != nil {
		return rx.Class{}, fmt.Errorf("g4: line %d: bad character class [%s]: %v", line, body, err)
	}
	c, ok := node.(rx.Class)
	if !ok {
		return rx.Class{}, fmt.Errorf("g4: line %d: bad character class [%s]", line, body)
	}
	return c, nil
}

// ---------------------------------------------------------------------------
// Assembly
// ---------------------------------------------------------------------------

func assemble(name string, rules []rawRule, literals []string) (*File, error) {
	f := &File{Name: name}
	frags := map[string]lexExpr{}
	var lexRules []rawRule
	var parserRules []rawRule
	for _, r := range rules {
		switch {
		case r.fragment:
			frags[r.name] = r.lexerBody
		case r.lexerBody != nil:
			lexRules = append(lexRules, r)
		default:
			parserRules = append(parserRules, r)
		}
	}
	if len(parserRules) == 0 {
		return nil, fmt.Errorf("g4: grammar %s has no parser rules", name)
	}
	// Non-fragment token rules can also be referenced from other rules.
	for _, r := range lexRules {
		if _, dup := frags[r.name]; !dup {
			frags[r.name] = r.lexerBody
		}
	}

	// EBNF parser grammar.
	eg := &ebnf.Grammar{Start: parserRules[0].name}
	for _, r := range parserRules {
		eg.Rules = append(eg.Rules, ebnf.Rule{Name: r.name, Body: r.parserBody})
	}
	f.Parser = eg

	// Implicit tokens: inline literals in parser rules, in order of first
	// appearance, placed before explicit rules (ANTLR gives them priority).
	var spec lexer.Spec
	for _, lit := range literals {
		spec.Rules = append(spec.Rules, lexer.Lit(lit))
	}
	for _, r := range lexRules {
		node, err := resolveLex(r.lexerBody, frags, map[string]bool{r.name: true})
		if err != nil {
			return nil, fmt.Errorf("g4: rule %s: %w", r.name, err)
		}
		spec.Rules = append(spec.Rules, lexer.Rule{
			Name: r.name, Pattern: node, Skip: r.skip,
			Mode: r.mode, Push: r.pushMode, Pop: r.popMode, Set: r.setMode,
		})
	}
	f.Lexer = spec

	// Every token the parser references must be producible: either an
	// implicit literal (collected above) or a non-skip lexer rule.
	producible := map[string]bool{}
	for _, r := range spec.Rules {
		if !r.Skip {
			producible[r.Name] = true
		}
	}
	for _, r := range parserRules {
		if missing := findMissingToken(r.parserBody, producible); missing != "" {
			return nil, fmt.Errorf("g4: rule %s references token %s, which no lexer rule produces", r.name, missing)
		}
	}
	return f, nil
}

// findMissingToken returns the first terminal reference not in producible,
// or "".
func findMissingToken(e ebnf.Expr, producible map[string]bool) string {
	switch e := e.(type) {
	case ebnf.T:
		if !producible[e.Name] {
			return e.Name
		}
	case ebnf.Seq:
		for _, it := range e.Items {
			if m := findMissingToken(it, producible); m != "" {
				return m
			}
		}
	case ebnf.Alt:
		for _, a := range e.Alts {
			if m := findMissingToken(a, producible); m != "" {
				return m
			}
		}
	case ebnf.Star:
		return findMissingToken(e.Inner, producible)
	case ebnf.Plus:
		return findMissingToken(e.Inner, producible)
	case ebnf.Opt:
		return findMissingToken(e.Inner, producible)
	}
	return ""
}

func resolveLex(e lexExpr, frags map[string]lexExpr, visiting map[string]bool) (rx.Node, error) {
	switch e := e.(type) {
	case lxNode:
		return e.n, nil
	case lxRef:
		if visiting[e.name] {
			return nil, fmt.Errorf("recursive lexer rule %s", e.name)
		}
		body, ok := frags[e.name]
		if !ok {
			return nil, fmt.Errorf("undefined lexer rule %s", e.name)
		}
		visiting[e.name] = true
		n, err := resolveLex(body, frags, visiting)
		delete(visiting, e.name)
		return n, err
	case lxSeq:
		parts := make([]rx.Node, 0, len(e.items))
		for _, it := range e.items {
			n, err := resolveLex(it, frags, visiting)
			if err != nil {
				return nil, err
			}
			parts = append(parts, n)
		}
		if len(parts) == 1 {
			return parts[0], nil
		}
		return rx.Concat{Parts: parts}, nil
	case lxAlt:
		alts := make([]rx.Node, 0, len(e.alts))
		for _, a := range e.alts {
			n, err := resolveLex(a, frags, visiting)
			if err != nil {
				return nil, err
			}
			alts = append(alts, n)
		}
		return rx.Alt{Alts: alts}, nil
	case lxStar:
		n, err := resolveLex(e.inner, frags, visiting)
		if err != nil {
			return nil, err
		}
		return rx.Star{Inner: n}, nil
	case lxPlus:
		n, err := resolveLex(e.inner, frags, visiting)
		if err != nil {
			return nil, err
		}
		return rx.Plus{Inner: n}, nil
	case lxOpt:
		n, err := resolveLex(e.inner, frags, visiting)
		if err != nil {
			return nil, err
		}
		return rx.Opt{Inner: n}, nil
	case lxNot:
		n, err := resolveLex(e.inner, frags, visiting)
		if err != nil {
			return nil, err
		}
		c, ok := n.(rx.Class)
		if !ok {
			return nil, fmt.Errorf("~ applies only to character sets and single characters")
		}
		if c.Negated {
			return rx.Class{Ranges: c.Ranges}, nil
		}
		return rx.Class{Ranges: c.Ranges, Negated: true}, nil
	default:
		return nil, fmt.Errorf("unknown lexer expression %T", e)
	}
}

// DesugaredGrammar runs the EBNF desugarer on the file's parser grammar —
// the complete grammar-conversion pipeline of Section 6.1.
func (f *File) DesugaredGrammar() (*grammarAlias, error) {
	return ebnf.Desugar(f.Parser)
}

// Strings keeps the import graph tidy for callers that only need names.
func (f *File) String() string {
	return fmt.Sprintf("grammar %s: %d parser rules, %d lexer rules",
		f.Name, len(f.Parser.Rules), len(f.Lexer.Rules))
}

type grammarAlias = grammar.Grammar
