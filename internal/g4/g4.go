// Package g4 reads a grammar written in an ANTLR-4-like syntax and splits
// it into the two artifacts the rest of the pipeline consumes: an EBNF
// parser grammar (internal/ebnf, desugared to BNF for CoStar) and a lexical
// specification (internal/lexer). It is the front end of the paper's
// grammar conversion tool (Section 6.1): "we built a tool that converts a
// grammar in ANTLR's input format to the ... data structure that CoStar
// takes as input".
//
// Supported subset:
//
//	grammar Name;
//	ruleName : alternative | alternative ;      // parser rule (lowercase)
//	TOKEN    : 'lit' [a-z]+ ~["\\] . FRAG* ;    // lexer rule (uppercase)
//	fragment FRAG : ... ;                        // lexer fragment
//	WS : [ \t\r\n]+ -> skip ;                    // skip / hidden-channel
//
// Parser-rule elements: 'literals' (implicit tokens), TOKEN refs, rule
// refs, (...), e*, e+, e?, alternation. Lexer-rule elements: 'literals',
// ['character classes'] with ANTLR escapes, ~negation of classes and
// single-char literals, '.', 'a'..'z' ranges, fragment refs, grouping and
// the same operators. Comments (// and /* */) are ignored.
package g4

import (
	"fmt"
	"strings"

	"costar/internal/ebnf"
	"costar/internal/lexer"
)

// File is a parsed grammar file.
type File struct {
	Name   string
	Parser *ebnf.Grammar
	Lexer  lexer.Spec
}

// Parse reads a .g4-subset source into a File. The parser grammar's start
// symbol is the first parser rule.
func Parse(src string) (*File, error) {
	toks, err := scan(src)
	if err != nil {
		return nil, err
	}
	p := &fileParser{toks: toks}
	return p.file()
}

// MustParse panics on error; for grammar literals in language packages.
func MustParse(src string) *File {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

type tokKind uint8

const (
	tIdent tokKind = iota // ruleName, TOKEN, keywords
	tLit                  // 'text' with escapes resolved
	tClass                // [...] raw body (escapes kept for the class parser)
	tPunct                // : ; | ( ) * + ? ~ . -> ..
)

type g4Tok struct {
	kind tokKind
	text string
	line int
}

func scan(src string) ([]g4Tok, error) {
	var out []g4Tok
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case strings.HasPrefix(src[i:], "//"):
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case strings.HasPrefix(src[i:], "/*"):
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("g4: line %d: unterminated block comment", line)
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case c == '\'':
			lit, n, err := scanLiteral(src[i:], line)
			if err != nil {
				return nil, err
			}
			out = append(out, g4Tok{tLit, lit, line})
			i += n
		case c == '[':
			j := i + 1
			for j < len(src) && src[j] != ']' {
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("g4: line %d: unterminated character class", line)
			}
			out = append(out, g4Tok{tClass, src[i+1 : j], line})
			i = j + 1
		case strings.HasPrefix(src[i:], "->"):
			out = append(out, g4Tok{tPunct, "->", line})
			i += 2
		case strings.HasPrefix(src[i:], ".."):
			out = append(out, g4Tok{tPunct, "..", line})
			i += 2
		case strings.ContainsRune(":;|()*+?~.,", rune(c)):
			out = append(out, g4Tok{tPunct, string(c), line})
			i++
		case isIdentByte(c):
			j := i
			for j < len(src) && isIdentByte(src[j]) {
				j++
			}
			out = append(out, g4Tok{tIdent, src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("g4: line %d: unexpected character %q", line, string(c))
		}
	}
	return out, nil
}

func isIdentByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// scanLiteral reads 'text' starting at src[0] == '\” and returns the
// unescaped text and bytes consumed.
func scanLiteral(src string, line int) (string, int, error) {
	var b strings.Builder
	i := 1
	for i < len(src) {
		switch src[i] {
		case '\'':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(src) {
				return "", 0, fmt.Errorf("g4: line %d: dangling escape", line)
			}
			i++
			switch src[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case 'f':
				b.WriteByte('\f')
			case '\\', '\'':
				b.WriteByte(src[i])
			case 'u':
				if i+4 >= len(src) {
					return "", 0, fmt.Errorf("g4: line %d: bad \\u escape", line)
				}
				v := rune(0)
				for k := 1; k <= 4; k++ {
					d := hexVal(src[i+k])
					if d < 0 {
						return "", 0, fmt.Errorf("g4: line %d: bad \\u escape", line)
					}
					v = v<<4 | rune(d)
				}
				b.WriteRune(v)
				i += 4
			default:
				b.WriteByte('\\')
				b.WriteByte(src[i])
			}
			i++
		case '\n':
			return "", 0, fmt.Errorf("g4: line %d: newline in literal", line)
		default:
			b.WriteByte(src[i])
			i++
		}
	}
	return "", 0, fmt.Errorf("g4: line %d: unterminated literal", line)
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}
