package g4

import (
	"strings"
	"testing"

	"costar/internal/ebnf"
	"costar/internal/grammar"
	"costar/internal/lexer"
	"costar/internal/parser"
)

const jsonG4 = `
// A JSON grammar in the supported ANTLR-4 subset.
grammar JSON;

json  : value ;
value : obj | arr | STRING | NUMBER | 'true' | 'false' | 'null' ;
obj   : '{' pair (',' pair)* '}' | '{' '}' ;
pair  : STRING ':' value ;
arr   : '[' value (',' value)* ']' | '[' ']' ;

STRING : '"' (ESC | ~["\\])* '"' ;
fragment ESC : '\\' . ;
NUMBER : '-'? INT ('.' [0-9]+)? EXP? ;
fragment INT : '0' | [1-9] [0-9]* ;
fragment EXP : [eE] [+\-]? [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
`

func pipeline(t *testing.T, src string) (*File, *grammar.Grammar, *lexer.Lexer) {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ebnf.Desugar(f.Parser)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lexer.New(f.Lexer)
	if err != nil {
		t.Fatal(err)
	}
	return f, g, l
}

func TestJSONPipeline(t *testing.T) {
	f, g, l := pipeline(t, jsonG4)
	if f.Name != "JSON" {
		t.Errorf("Name = %q", f.Name)
	}
	if g.Start != "json" {
		t.Errorf("start = %q", g.Start)
	}
	toks, err := l.Tokenize(`{"a": [1, 2.5, true], "b": {"c": null}} `)
	if err != nil {
		t.Fatal(err)
	}
	p := parser.MustNew(g, parser.Options{CheckInvariants: true})
	res := p.Parse(toks)
	if res.Kind != parser.Unique {
		t.Fatalf("parse = %s", res)
	}
	// Bad JSON rejects.
	bad, err := l.Tokenize(`{"a": }`)
	if err != nil {
		t.Fatal(err)
	}
	if res := p.Parse(bad); res.Kind != parser.Reject {
		t.Errorf("bad JSON = %s", res)
	}
}

func TestImplicitTokensPriority(t *testing.T) {
	f, _, l := pipeline(t, `
		grammar K;
		s : 'let' ID ;
		ID : [a-z]+ ;
		WS : [ ]+ -> skip ;
	`)
	// Implicit 'let' must be listed before ID so the keyword wins ties.
	if f.Lexer.Rules[0].Name != "let" {
		t.Errorf("first lexer rule = %q", f.Lexer.Rules[0].Name)
	}
	toks, err := l.Tokenize("let letx")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Terminal != "let" || toks[1].Terminal != "ID" {
		t.Errorf("tokens = %v", toks)
	}
}

func TestNegatedSetsAndFragments(t *testing.T) {
	_, _, l := pipeline(t, `
		grammar N;
		s : COMMENT ;
		COMMENT : '#' ~[\n]* ;
	`)
	toks, err := l.Tokenize("# everything until eol")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Terminal != "COMMENT" {
		t.Errorf("tokens = %v", toks)
	}
}

func TestCharRange(t *testing.T) {
	_, _, l := pipeline(t, `
		grammar R;
		s : D ;
		D : 'a'..'f'+ ;
	`)
	toks, err := l.Tokenize("abcdef")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 {
		t.Errorf("tokens = %v", toks)
	}
	if _, err := l.Tokenize("xyz"); err == nil {
		t.Error("out-of-range input lexed")
	}
}

func TestEOFIsIgnored(t *testing.T) {
	f, err := Parse(`
		grammar E;
		s : 'a' EOF ;
	`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ebnf.Desugar(f.Parser)
	if err != nil {
		t.Fatal(err)
	}
	rhs := g.RhssFor("s")[0]
	if len(rhs) != 1 || rhs[0] != grammar.T("a") {
		t.Errorf("rhs = %v", rhs)
	}
}

func TestChannelDirective(t *testing.T) {
	f, _, _ := pipeline(t, `
		grammar C;
		s : 'x' ;
		HIDDENWS : [ ]+ -> channel(HIDDEN) ;
	`)
	var found bool
	for _, r := range f.Lexer.Rules {
		if r.Name == "HIDDENWS" && r.Skip {
			found = true
		}
	}
	if !found {
		t.Error("channel(HIDDEN) rule not marked skip")
	}
}

func TestXMLEltRule(t *testing.T) {
	// The §6.1 rule that makes XML non-LL(k): both alternatives share the
	// '<' Name attribute* prefix. End-to-end it must still parse uniquely.
	_, g, l := pipeline(t, `
		grammar X;
		elt : '<' NAME attr* '>' content '<' '/' NAME '>'
		    | '<' NAME attr* '/>' ;
		attr : NAME '=' STRING ;
		content : elt* ;
		NAME : [a-zA-Z]+ ;
		STRING : '"' ~["]* '"' ;
		WS : [ \t\r\n]+ -> skip ;
	`)
	p := parser.MustNew(g, parser.Options{CheckInvariants: true})
	for _, src := range []string{
		`<a x="1" y="2"/>`,
		`<a x="1"><b/><c q="r"></c></a>`,
		`<a></a>`,
	} {
		toks, err := l.Tokenize(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if res := p.Parse(toks); res.Kind != parser.Unique {
			t.Errorf("%s: %s", src, res)
		}
	}
	toks, _ := l.Tokenize(`<a><b></a>`)
	if res := p.Parse(toks); res.Kind != parser.Reject {
		t.Errorf("mismatched tags parsed: %s", res)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                                    // empty
		`grammar G;`,                          // no parser rules
		`grammar G; s : 'a'`,                  // missing ;
		`grammar G; s : X ; X : Y ; Y : X ;`,  // recursive lexer rules
		`grammar G; s : X ; X : ~('ab') ;`,    // ~ on multi-char literal
		`grammar G; s : X ;`,                  // undefined lexer rule
		`grammar G; s : 'a' -> skipp ;`,       // unknown action
		`grammar G; fragment s : 'a' ;`,       // fragment on parser rule
		`grammar G; s : [a-z] ;`,              // class in parser rule
		`grammar G; s : 'a' /* unterminated`,  // comment
		`grammar G; s : 'unterminated`,        // literal
		`grammar G; X : 'a'..'ab' ;  s : X ;`, // bad range
	}
	for _, src := range cases {
		f, err := Parse(src)
		if err == nil {
			// Some failures surface at desugar/lexer-build time.
			if _, derr := ebnf.Desugar(f.Parser); derr == nil {
				if _, lerr := lexer.New(f.Lexer); lerr == nil {
					t.Errorf("pipeline accepted %q", src)
				}
			}
		}
	}
}

func TestFileString(t *testing.T) {
	f := MustParse(jsonG4)
	s := f.String()
	if !strings.Contains(s, "JSON") || !strings.Contains(s, "parser rules") {
		t.Errorf("String = %q", s)
	}
	if _, err := f.DesugaredGrammar(); err != nil {
		t.Errorf("DesugaredGrammar: %v", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic")
		}
	}()
	MustParse("nonsense")
}

func TestBlockCommentsAndLines(t *testing.T) {
	f, err := Parse(`
		grammar B; /* multi
		line comment */ s : 'a' /* inline */ 'b' ;
	`)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := ebnf.Desugar(f.Parser)
	rhs := g.RhssFor("s")[0]
	if len(rhs) != 2 {
		t.Errorf("rhs = %v", rhs)
	}
}

func TestLiteralEscapes(t *testing.T) {
	f, _, l := pipeline(t, `
		grammar L;
		s : T ;
		T : '\'' '\\'? '\n' ;
	`)
	_ = f
	toks, err := l.Tokenize("'\\\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Terminal != "T" {
		t.Errorf("tokens = %v", toks)
	}
}
