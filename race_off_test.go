//go:build !race

package costar

// raceEnabled reports whether the race detector instruments this build.
// Allocation-ceiling assertions are skipped under -race: the detector's
// shadow-memory bookkeeping inflates testing.AllocsPerRun far past the
// ceilings that hold in a normal build. The lifetime and pooled-reuse tests
// still run raced — only the numeric ceilings are gated.
const raceEnabled = false
