#!/bin/sh
# serve-smoke: end-to-end smoke of the hardened parse daemon, as CI runs it.
# Boots `costar serve` on a freshly compiled artifact, fires concurrent
# clean + broken + oversized requests, asserts the health/metrics surface,
# and verifies a SIGTERM drain exits 0. Everything here goes through the
# real binary and a real TCP port — no test harness shortcuts.
set -eu

work=$(mktemp -d)
pid=""
cleanup() {
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
        kill -KILL "$pid" 2>/dev/null || true
    fi
    rm -rf "$work"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- serve log ---" >&2
    cat "$work/serve.log" >&2 || true
    exit 1
}

echo "serve-smoke: building costar"
go build -o "$work/costar" ./cmd/costar

echo "serve-smoke: compiling a warmed json artifact"
"$work/costar" compile -lang json -warm 4 -o "$work/json.csar"

# A small body bound so the oversized request is cheap to construct.
"$work/costar" serve -artifact "$work/json.csar" -addr 127.0.0.1:0 -max-body 4096 \
    2>"$work/serve.log" &
pid=$!

# Wait for the daemon to log its picked port.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's|.*listening on http://\([^ ]*\).*|\1|p' "$work/serve.log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || fail "daemon exited before listening"
    sleep 0.1
done
[ -n "$addr" ] && echo "serve-smoke: daemon up on $addr" || fail "daemon never logged its address"

# The artifact session's wire name, from the daemon's own catalog.
grammar=$(curl -sS --max-time 10 "http://$addr/grammars" | sed -n 's/.*"name":"\([^"]*\)".*/\1/p')
[ -n "$grammar" ] || fail "/grammars listed no sessions"

post() { # post <body-file> <status-file> <response-file> [query]
    curl -sS --max-time 10 -o "$3" -w '%{http_code}' \
        --data-binary @"$1" "http://$addr/parse/$grammar$4" >"$2"
}

# Concurrent clean + broken + oversized requests: each must come back with
# its own typed verdict, none may disturb the others.
printf '{"a": [1, 2], "b": {"c": true}}' >"$work/clean.json"
printf '{"a": 1, ]' >"$work/broken.json"
head -c 8192 /dev/zero | tr '\0' '7' >"$work/huge.json"
post "$work/clean.json" "$work/clean.status" "$work/clean.resp" "" &
p1=$!
post "$work/broken.json" "$work/broken.status" "$work/broken.resp" "" &
p2=$!
post "$work/huge.json" "$work/huge.status" "$work/huge.resp" "" &
p3=$!
wait "$p1" "$p2" "$p3" || fail "a concurrent request transport-failed"

[ "$(cat "$work/clean.status")" = 200 ] || fail "clean parse got $(cat "$work/clean.status"), want 200"
grep -q '"kind":"Unique"' "$work/clean.resp" || fail "clean parse verdict was not Unique: $(cat "$work/clean.resp")"
[ "$(cat "$work/broken.status")" = 422 ] || fail "broken parse got $(cat "$work/broken.status"), want 422"
grep -q '"kind":"Reject"' "$work/broken.resp" || fail "broken parse verdict was not Reject: $(cat "$work/broken.resp")"
[ "$(cat "$work/huge.status")" = 413 ] || fail "oversized body got $(cat "$work/huge.status"), want 413"
grep -q '"kind":"Shed"' "$work/huge.resp" || fail "oversized body was not a typed Shed: $(cat "$work/huge.resp")"
echo "serve-smoke: concurrent clean=200/Unique broken=422/Reject oversized=413/Shed"

# Recovering mode over the wire: the broken input parses to a tree plus
# positioned diagnostics when the caller opts in.
post "$work/broken.json" "$work/rec.status" "$work/rec.resp" "?recover=1"
[ "$(cat "$work/rec.status")" = 200 ] || fail "recover=1 got $(cat "$work/rec.status"), want 200"
grep -q '"kind":"Recovered"' "$work/rec.resp" || fail "recover=1 verdict was not Recovered: $(cat "$work/rec.resp")"

# Health and metrics surface.
[ "$(curl -sS --max-time 10 -o /dev/null -w '%{http_code}' "http://$addr/healthz")" = 200 ] || fail "/healthz not 200"
[ "$(curl -sS --max-time 10 -o /dev/null -w '%{http_code}' "http://$addr/readyz")" = 200 ] || fail "/readyz not 200"
curl -sS --max-time 10 "http://$addr/metrics" >"$work/metrics"
for family in costar_requests_total costar_shed_total costar_ready costar_admission_capacity costar_session_cache_hits_total; do
    grep -q "^$family" "$work/metrics" || fail "/metrics missing $family"
done
grep -q '^costar_requests_total{verdict="unique"} [1-9]' "$work/metrics" || fail "unique verdict not counted"
grep -q '^costar_shed_total{reason="body"} [1-9]' "$work/metrics" || fail "oversized shed not counted"
echo "serve-smoke: health and metrics surface intact"

# Clean drain: SIGTERM must exit 0 after finishing in-flight work.
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
[ "$rc" = 0 ] || fail "SIGTERM drain exited $rc, want 0"
grep -q "drained cleanly" "$work/serve.log" || fail "daemon never logged a clean drain"
echo "serve-smoke: PASS (clean drain, exit 0)"
