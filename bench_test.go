package costar

// Benchmark suite: one benchmark per paper table/figure (run the printable
// versions with cmd/costar-bench), plus the DESIGN.md §5 ablations.
//
//	go test -bench=. -benchmem
//
// Figure 9  → BenchmarkFig9*   (CoStar parse time per language; ns/token)
// Figure 10 → BenchmarkFig10*  (verified engine vs imperative baseline)
// Figure 11 → BenchmarkFig11*  (baseline cold vs warm prediction cache)
// Figure 8 is a static table (BenchmarkFig8Corpus times corpus+lexing).

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"costar/internal/allstar"
	"costar/internal/avl"
	"costar/internal/bench"
	"costar/internal/grammar"
	"costar/internal/languages/jsonlang"
	"costar/internal/languages/langkit"
	"costar/internal/languages/pylang"
	"costar/internal/languages/xmllang"
	"costar/internal/machine"
	"costar/internal/parser"
	"costar/internal/prediction"
	"costar/internal/source"
)

// corpusFile returns a ~tokens-sized token word for the named language.
func corpusFile(b *testing.B, name string, tokens int) (bench.Lang, []grammar.Token, string) {
	b.Helper()
	for _, l := range bench.Languages() {
		if l.Name != name {
			continue
		}
		src := l.Generate(42, tokens)
		toks, err := l.Tokenize(src)
		if err != nil {
			b.Fatal(err)
		}
		return l, toks, src
	}
	b.Fatalf("unknown language %s", name)
	panic("unreachable")
}

func reportPerToken(b *testing.B, tokens int) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(tokens), "ns/token")
}

// ---------------------------------------------------------------------------
// Figure 8: corpus generation + lexing cost
// ---------------------------------------------------------------------------

func BenchmarkFig8Corpus(b *testing.B) {
	for _, l := range bench.Languages() {
		l := l
		b.Run(l.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				src := l.Generate(7, 2000)
				if _, err := l.Tokenize(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 9: CoStar parse time per language (session cache, pre-tokenized)
// ---------------------------------------------------------------------------

func benchFig9(b *testing.B, lang string) {
	l, toks, _ := corpusFile(b, lang, 4000)
	p := parser.MustNew(l.Grammar, parser.Options{})
	p.Parse(toks) // prime analyses
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := p.Parse(toks); res.Kind != machine.Unique {
			b.Fatal(res.Reason)
		}
	}
	reportPerToken(b, len(toks))
}

func BenchmarkFig9JSON(b *testing.B)   { benchFig9(b, "json") }
func BenchmarkFig9XML(b *testing.B)    { benchFig9(b, "xml") }
func BenchmarkFig9DOT(b *testing.B)    { benchFig9(b, "dot") }
func BenchmarkFig9Python(b *testing.B) { benchFig9(b, "python") }

// ---------------------------------------------------------------------------
// Figure 10: verified engine vs imperative baseline (and the lexer side)
// ---------------------------------------------------------------------------

func benchFig10(b *testing.B, lang string) {
	l, toks, src := corpusFile(b, lang, 4000)
	b.Run("costar", func(b *testing.B) {
		p := parser.MustNew(l.Grammar, parser.Options{})
		p.Parse(toks)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := p.Parse(toks); res.Kind != machine.Unique {
				b.Fatal(res.Reason)
			}
		}
		reportPerToken(b, len(toks))
	})
	b.Run("baseline", func(b *testing.B) {
		p := allstar.MustNew(l.Grammar, allstar.Options{})
		p.Parse(toks)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := p.Parse(toks); res.Kind != machine.Unique {
				b.Fatal(res.Reason)
			}
		}
		reportPerToken(b, len(toks))
	})
	b.Run("lexer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := l.Tokenize(src); err != nil {
				b.Fatal(err)
			}
		}
		reportPerToken(b, len(toks))
	})
}

func BenchmarkFig10JSON(b *testing.B)   { benchFig10(b, "json") }
func BenchmarkFig10XML(b *testing.B)    { benchFig10(b, "xml") }
func BenchmarkFig10DOT(b *testing.B)    { benchFig10(b, "dot") }
func BenchmarkFig10Python(b *testing.B) { benchFig10(b, "python") }

// ---------------------------------------------------------------------------
// Figure 11: baseline prediction-cache warm-up (Python)
// ---------------------------------------------------------------------------

func BenchmarkFig11ColdCache(b *testing.B) {
	l, toks, _ := corpusFile(b, "python", 3000)
	p := allstar.MustNew(l.Grammar, allstar.Options{FreshCachePerParse: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := p.Parse(toks); res.Kind != machine.Unique {
			b.Fatal(res.Reason)
		}
	}
	reportPerToken(b, len(toks))
}

func BenchmarkFig11WarmCache(b *testing.B) {
	l, toks, _ := corpusFile(b, "python", 3000)
	p := allstar.MustNew(l.Grammar, allstar.Options{})
	p.WarmUp(toks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := p.Parse(toks); res.Kind != machine.Unique {
			b.Fatal(res.Reason)
		}
	}
	reportPerToken(b, len(toks))
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ---------------------------------------------------------------------------

// BenchmarkAblationSLLCache: adaptivePredict with the SLL DFA versus pure
// LL prediction on every decision.
func BenchmarkAblationSLLCache(b *testing.B) {
	l, toks, _ := corpusFile(b, "json", 2500)
	for _, cfg := range []struct {
		name string
		opts parser.Options
	}{
		{"sll+cache", parser.Options{}},
		{"ll-only", parser.Options{DisableSLL: true}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			p := parser.MustNew(l.Grammar, cfg.opts)
			p.Parse(toks)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := p.Parse(toks); res.Kind != machine.Unique {
					b.Fatal(res.Reason)
				}
			}
			reportPerToken(b, len(toks))
		})
	}
}

// BenchmarkAblationCacheReuse: session cache kept across parses versus a
// fresh cache per parse (the verified engine's Figure 11 analogue; the
// paper notes CoStar could not reuse caches across inputs — the session
// API adds that, and this measures its value).
func BenchmarkAblationCacheReuse(b *testing.B) {
	l, toks, _ := corpusFile(b, "python", 2000)
	for _, cfg := range []struct {
		name string
		opts parser.Options
	}{
		{"reuse", parser.Options{}},
		{"fresh", parser.Options{FreshCachePerParse: true}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			p := parser.MustNew(l.Grammar, cfg.opts)
			p.Parse(toks)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := p.Parse(toks); res.Kind != machine.Unique {
					b.Fatal(res.Reason)
				}
			}
			reportPerToken(b, len(toks))
		})
	}
}

// BenchmarkAblationInvariants: cost of checking the Figure 4 stack
// well-formedness invariant on every machine step.
func BenchmarkAblationInvariants(b *testing.B) {
	l, toks, _ := corpusFile(b, "json", 1500)
	for _, cfg := range []struct {
		name string
		opts parser.Options
	}{
		{"off", parser.Options{}},
		{"on", parser.Options{CheckInvariants: true}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			p := parser.MustNew(l.Grammar, cfg.opts)
			p.Parse(toks)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := p.Parse(toks); res.Kind != machine.Unique {
					b.Fatal(res.Reason)
				}
			}
			reportPerToken(b, len(toks))
		})
	}
}

// BenchmarkAblationMaps: the Coq-style persistent AVL map over symbol names
// (what the verified engine used for visited sets before grammar
// compilation; Section 6.1 blames its comparisons for Python's slowness)
// versus Go's native hash map versus the dense NTSet bitset the machine now
// uses — the three points of the visited-set ablation.
func BenchmarkAblationMaps(b *testing.B) {
	keys := make([]string, 64)
	ids := make([]grammar.NTID, 64)
	for i := range keys {
		keys[i] = grammar.NT("NT_" + string(rune('A'+i%26)) + string(rune('0'+i/26))).Name
		ids[i] = grammar.NTID(i)
	}
	b.Run("avl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var s avl.Set
			for _, k := range keys {
				s = s.Add(k)
			}
			for _, k := range keys {
				if !s.Contains(k) {
					b.Fatal("missing key")
				}
			}
		}
	})
	b.Run("gomap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := make(map[string]bool, len(keys))
			for _, k := range keys {
				s[k] = true
			}
			for _, k := range keys {
				if !s[k] {
					b.Fatal("missing key")
				}
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var s machine.NTSet
			for _, id := range ids {
				s = s.Add(id)
			}
			for _, id := range ids {
				if !s.Contains(id) {
					b.Fatal("missing key")
				}
			}
		}
	})
}

// BenchmarkAblationStacks: the functional persistent machine versus the
// imperative baseline on identical input — the "cost of the verified
// style" headline, isolated from lexing.
func BenchmarkAblationStacks(b *testing.B) {
	l, toks, _ := corpusFile(b, "dot", 2500)
	b.Run("persistent", func(b *testing.B) {
		p := parser.MustNew(l.Grammar, parser.Options{})
		p.Parse(toks)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Parse(toks)
		}
		reportPerToken(b, len(toks))
	})
	b.Run("mutable", func(b *testing.B) {
		p := allstar.MustNew(l.Grammar, allstar.Options{})
		p.Parse(toks)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Parse(toks)
		}
		reportPerToken(b, len(toks))
	})
}

// ---------------------------------------------------------------------------
// Parallel batch parsing (concurrent sessions PR; results in BENCH_parallel.json)
// ---------------------------------------------------------------------------

// BenchmarkParallelWarmCache measures warm-cache batch throughput over the
// JSON corpus at 1/2/4/8 workers, comparing one shared concurrent session
// (one SLL DFA for everyone) against per-goroutine sessions (each worker
// owns and warms a private DFA — the pre-concurrency workaround). Scaling
// requires GOMAXPROCS > 1; the single-threaded shared/j1 case doubles as
// the lock-free-hit-path regression guard vs. the sequential Fig9 numbers.
func BenchmarkParallelWarmCache(b *testing.B) {
	var l bench.Lang
	for _, cand := range bench.Languages() {
		if cand.Name == "json" {
			l = cand
		}
	}
	files, err := bench.Corpus(l, bench.Config{Files: 12, MinTokens: 300, MaxTokens: 2000, Trials: 1})
	if err != nil {
		b.Fatal(err)
	}
	words := make([][]grammar.Token, len(files))
	tokens := 0
	for i, f := range files {
		words[i] = f.Tokens
		tokens += len(f.Tokens)
	}
	checkAll := func(b *testing.B, results []parser.Result) {
		b.Helper()
		for _, r := range results {
			if r.Kind != machine.Unique {
				b.Fatal(r.Reason)
			}
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("shared/j%d", workers), func(b *testing.B) {
			p := parser.MustNew(l.Grammar, parser.Options{})
			checkAll(b, p.ParseAll(words, workers)) // warm the shared DFA
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				checkAll(b, p.ParseAll(words, workers))
			}
			reportCorpusThroughput(b, tokens)
		})
		b.Run(fmt.Sprintf("pergoroutine/j%d", workers), func(b *testing.B) {
			sessions := make([]*parser.Parser, workers)
			for k := range sessions {
				sessions[k] = parser.MustNew(l.Grammar, parser.Options{})
				for i := k; i < len(words); i += workers {
					sessions[k].Parse(words[i]) // warm each private DFA
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for k := range sessions {
					wg.Add(1)
					go func(k int) {
						defer wg.Done()
						for i := k; i < len(words); i += workers {
							if res := sessions[k].Parse(words[i]); res.Kind != machine.Unique {
								b.Error(res.Reason)
								return
							}
						}
					}(k)
				}
				wg.Wait()
			}
			reportCorpusThroughput(b, tokens)
		})
	}
}

// reportCorpusThroughput reports corpus tokens parsed per second of wall
// time — the metric BENCH_parallel.json records.
func reportCorpusThroughput(b *testing.B, tokens int) {
	b.ReportMetric(float64(tokens)*float64(b.N)/b.Elapsed().Seconds(), "tokens/s")
	reportPerToken(b, tokens)
}

// ---------------------------------------------------------------------------
// Streaming pipeline: end-to-end reader parsing and window residency
// ---------------------------------------------------------------------------

// BenchmarkStreamingWindow measures the demand-driven pipeline end to end —
// incremental lexing, layout (Python), and cursor-fed parsing from an
// io.Reader — reporting ns/token, allocations, and the peak number of
// tokens the sliding window ever retained (peak-window). The peak must
// track the grammar's lookahead needs, not the input size; the equivalence
// and bounded-window tests enforce that, this benchmark makes it visible.
func BenchmarkStreamingWindow(b *testing.B) {
	langs := []struct {
		name string
		l    *langkit.Language
		gen  func(int64, int) string
	}{
		{"json", jsonlang.Lang, jsonlang.Generate},
		{"xml", xmllang.Lang, xmllang.Generate},
		{"python", pylang.Lang, pylang.Generate},
	}
	for _, lg := range langs {
		lg := lg
		b.Run(lg.name, func(b *testing.B) {
			src := lg.gen(42, 4000)
			toks, err := lg.l.Tokenize(src)
			if err != nil {
				b.Fatal(err)
			}
			p := parser.MustNew(lg.l.Grammar(), parser.Options{})
			p.Parse(toks) // prime analyses and the SLL cache
			peak := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cur := lg.l.Cursor(strings.NewReader(src))
				if res := p.ParseSource(cur); res.Kind != machine.Unique {
					b.Fatal(res.Reason)
				}
				if w := cur.PeakWindow(); w > peak {
					peak = w
				}
			}
			reportPerToken(b, len(toks))
			b.ReportMetric(float64(peak), "peak-window")
		})
	}
}

// BenchmarkPrediction isolates adaptivePredict on the paper's non-LL(k)
// XML decision with a long attribute prefix.
func BenchmarkPrediction(b *testing.B) {
	g := MustParseBNF(`S -> X c | X d ; X -> a X | b`)
	var w []grammar.Token
	for i := 0; i < 60; i++ {
		w = append(w, grammar.Tok("a", "a"))
	}
	w = append(w, grammar.Tok("b", "b"), grammar.Tok("d", "d"))
	ap := prediction.New(g, prediction.Options{})
	c := g.Compiled()
	sID, _ := c.NTIDOf("S")
	la := source.FromTokens(c, w)
	st := machine.Init(g, "S", w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ap.Predict(sID, st.Suffix, la)
		if p.Kind != machine.PredUnique {
			b.Fatal("prediction failed")
		}
	}
}
