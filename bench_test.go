package costar

// Benchmark suite: one benchmark per paper table/figure (run the printable
// versions with cmd/costar-bench), plus the DESIGN.md §5 ablations.
//
//	go test -bench=. -benchmem
//
// Figure 9  → BenchmarkFig9*   (CoStar parse time per language; ns/token)
// Figure 10 → BenchmarkFig10*  (verified engine vs imperative baseline)
// Figure 11 → BenchmarkFig11*  (baseline cold vs warm prediction cache)
// Figure 8 is a static table (BenchmarkFig8Corpus times corpus+lexing).

import (
	"testing"

	"costar/internal/allstar"
	"costar/internal/avl"
	"costar/internal/bench"
	"costar/internal/grammar"
	"costar/internal/machine"
	"costar/internal/parser"
	"costar/internal/prediction"
)

// corpusFile returns a ~tokens-sized token word for the named language.
func corpusFile(b *testing.B, name string, tokens int) (bench.Lang, []grammar.Token, string) {
	b.Helper()
	for _, l := range bench.Languages() {
		if l.Name != name {
			continue
		}
		src := l.Generate(42, tokens)
		toks, err := l.Tokenize(src)
		if err != nil {
			b.Fatal(err)
		}
		return l, toks, src
	}
	b.Fatalf("unknown language %s", name)
	panic("unreachable")
}

func reportPerToken(b *testing.B, tokens int) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(tokens), "ns/token")
}

// ---------------------------------------------------------------------------
// Figure 8: corpus generation + lexing cost
// ---------------------------------------------------------------------------

func BenchmarkFig8Corpus(b *testing.B) {
	for _, l := range bench.Languages() {
		l := l
		b.Run(l.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				src := l.Generate(7, 2000)
				if _, err := l.Tokenize(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 9: CoStar parse time per language (session cache, pre-tokenized)
// ---------------------------------------------------------------------------

func benchFig9(b *testing.B, lang string) {
	l, toks, _ := corpusFile(b, lang, 4000)
	p := parser.MustNew(l.Grammar, parser.Options{})
	p.Parse(toks) // prime analyses
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := p.Parse(toks); res.Kind != machine.Unique {
			b.Fatal(res.Reason)
		}
	}
	reportPerToken(b, len(toks))
}

func BenchmarkFig9JSON(b *testing.B)   { benchFig9(b, "json") }
func BenchmarkFig9XML(b *testing.B)    { benchFig9(b, "xml") }
func BenchmarkFig9DOT(b *testing.B)    { benchFig9(b, "dot") }
func BenchmarkFig9Python(b *testing.B) { benchFig9(b, "python") }

// ---------------------------------------------------------------------------
// Figure 10: verified engine vs imperative baseline (and the lexer side)
// ---------------------------------------------------------------------------

func benchFig10(b *testing.B, lang string) {
	l, toks, src := corpusFile(b, lang, 4000)
	b.Run("costar", func(b *testing.B) {
		p := parser.MustNew(l.Grammar, parser.Options{})
		p.Parse(toks)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := p.Parse(toks); res.Kind != machine.Unique {
				b.Fatal(res.Reason)
			}
		}
		reportPerToken(b, len(toks))
	})
	b.Run("baseline", func(b *testing.B) {
		p := allstar.MustNew(l.Grammar, allstar.Options{})
		p.Parse(toks)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := p.Parse(toks); res.Kind != machine.Unique {
				b.Fatal(res.Reason)
			}
		}
		reportPerToken(b, len(toks))
	})
	b.Run("lexer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := l.Tokenize(src); err != nil {
				b.Fatal(err)
			}
		}
		reportPerToken(b, len(toks))
	})
}

func BenchmarkFig10JSON(b *testing.B)   { benchFig10(b, "json") }
func BenchmarkFig10XML(b *testing.B)    { benchFig10(b, "xml") }
func BenchmarkFig10DOT(b *testing.B)    { benchFig10(b, "dot") }
func BenchmarkFig10Python(b *testing.B) { benchFig10(b, "python") }

// ---------------------------------------------------------------------------
// Figure 11: baseline prediction-cache warm-up (Python)
// ---------------------------------------------------------------------------

func BenchmarkFig11ColdCache(b *testing.B) {
	l, toks, _ := corpusFile(b, "python", 3000)
	p := allstar.MustNew(l.Grammar, allstar.Options{FreshCachePerParse: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := p.Parse(toks); res.Kind != machine.Unique {
			b.Fatal(res.Reason)
		}
	}
	reportPerToken(b, len(toks))
}

func BenchmarkFig11WarmCache(b *testing.B) {
	l, toks, _ := corpusFile(b, "python", 3000)
	p := allstar.MustNew(l.Grammar, allstar.Options{})
	p.WarmUp(toks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := p.Parse(toks); res.Kind != machine.Unique {
			b.Fatal(res.Reason)
		}
	}
	reportPerToken(b, len(toks))
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ---------------------------------------------------------------------------

// BenchmarkAblationSLLCache: adaptivePredict with the SLL DFA versus pure
// LL prediction on every decision.
func BenchmarkAblationSLLCache(b *testing.B) {
	l, toks, _ := corpusFile(b, "json", 2500)
	for _, cfg := range []struct {
		name string
		opts parser.Options
	}{
		{"sll+cache", parser.Options{}},
		{"ll-only", parser.Options{DisableSLL: true}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			p := parser.MustNew(l.Grammar, cfg.opts)
			p.Parse(toks)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := p.Parse(toks); res.Kind != machine.Unique {
					b.Fatal(res.Reason)
				}
			}
			reportPerToken(b, len(toks))
		})
	}
}

// BenchmarkAblationCacheReuse: session cache kept across parses versus a
// fresh cache per parse (the verified engine's Figure 11 analogue; the
// paper notes CoStar could not reuse caches across inputs — the session
// API adds that, and this measures its value).
func BenchmarkAblationCacheReuse(b *testing.B) {
	l, toks, _ := corpusFile(b, "python", 2000)
	for _, cfg := range []struct {
		name string
		opts parser.Options
	}{
		{"reuse", parser.Options{}},
		{"fresh", parser.Options{FreshCachePerParse: true}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			p := parser.MustNew(l.Grammar, cfg.opts)
			p.Parse(toks)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := p.Parse(toks); res.Kind != machine.Unique {
					b.Fatal(res.Reason)
				}
			}
			reportPerToken(b, len(toks))
		})
	}
}

// BenchmarkAblationInvariants: cost of checking the Figure 4 stack
// well-formedness invariant on every machine step.
func BenchmarkAblationInvariants(b *testing.B) {
	l, toks, _ := corpusFile(b, "json", 1500)
	for _, cfg := range []struct {
		name string
		opts parser.Options
	}{
		{"off", parser.Options{}},
		{"on", parser.Options{CheckInvariants: true}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			p := parser.MustNew(l.Grammar, cfg.opts)
			p.Parse(toks)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := p.Parse(toks); res.Kind != machine.Unique {
					b.Fatal(res.Reason)
				}
			}
			reportPerToken(b, len(toks))
		})
	}
}

// BenchmarkAblationMaps: the Coq-style persistent AVL map (what the
// verified engine uses for visited sets; Section 6.1 blames its comparisons
// for Python's slowness) versus Go's native hash map.
func BenchmarkAblationMaps(b *testing.B) {
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = grammar.NT("NT_" + string(rune('A'+i%26)) + string(rune('0'+i/26))).Name
	}
	b.Run("avl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var s avl.Set
			for _, k := range keys {
				s = s.Add(k)
			}
			for _, k := range keys {
				if !s.Contains(k) {
					b.Fatal("missing key")
				}
			}
		}
	})
	b.Run("gomap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := make(map[string]bool, len(keys))
			for _, k := range keys {
				s[k] = true
			}
			for _, k := range keys {
				if !s[k] {
					b.Fatal("missing key")
				}
			}
		}
	})
}

// BenchmarkAblationStacks: the functional persistent machine versus the
// imperative baseline on identical input — the "cost of the verified
// style" headline, isolated from lexing.
func BenchmarkAblationStacks(b *testing.B) {
	l, toks, _ := corpusFile(b, "dot", 2500)
	b.Run("persistent", func(b *testing.B) {
		p := parser.MustNew(l.Grammar, parser.Options{})
		p.Parse(toks)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Parse(toks)
		}
		reportPerToken(b, len(toks))
	})
	b.Run("mutable", func(b *testing.B) {
		p := allstar.MustNew(l.Grammar, allstar.Options{})
		p.Parse(toks)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Parse(toks)
		}
		reportPerToken(b, len(toks))
	})
}

// BenchmarkPrediction isolates adaptivePredict on the paper's non-LL(k)
// XML decision with a long attribute prefix.
func BenchmarkPrediction(b *testing.B) {
	g := MustParseBNF(`S -> X c | X d ; X -> a X | b`)
	var w []grammar.Token
	for i := 0; i < 60; i++ {
		w = append(w, grammar.Tok("a", "a"))
	}
	w = append(w, grammar.Tok("b", "b"), grammar.Tok("d", "d"))
	ap := prediction.New(g, prediction.Options{})
	st := machine.Init("S", w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ap.Predict("S", st.Suffix, w)
		if p.Kind != machine.PredUnique {
			b.Fatal("prediction failed")
		}
	}
}
