// Package costar is a Go implementation of CoStar, the verified ALL(*)
// parser of Lasser, Casinghino, Fisher & Roux (PLDI 2021). It re-exports
// the public surface of the internal packages as one coherent API:
//
//	g := costar.MustParseBNF(`S -> A c | A d ; A -> a A | b`)
//	p := costar.MustNewParser(g, costar.Options{})
//	res := p.Parse(costar.Words("a", "b", "d"))
//	switch res.Kind {
//	case costar.Unique: fmt.Println("one tree:", res.Tree)
//	case costar.Ambig:  fmt.Println("ambiguous; one of the trees:", res.Tree)
//	case costar.Reject: fmt.Println("not in the language:", res.Reason)
//	case costar.Error:  fmt.Println("left recursion or internal error:", res.Err)
//	}
//
// The parser is an interpreter: it takes any BNF grammar at run time (no
// code generation), handles every context-free grammar without left
// recursion, detects ambiguity, and — unlike its Coq-verified ancestor —
// carries its correctness argument as an executable test suite
// (differential testing against an Earley oracle, machine-checked
// invariants, and the paper's termination measure as assertions).
//
// Grammars can be written in three forms: programmatically
// (grammar.Builder), in plain BNF text (ParseBNF), or in an ANTLR-4-like
// syntax with EBNF operators and lexer rules (LoadG4), which is desugared
// to BNF exactly as the paper's grammar-conversion tool does.
package costar

import (
	"context"
	"io"

	"costar/internal/artifact"
	"costar/internal/diag"
	"costar/internal/ebnf"
	"costar/internal/g4"
	"costar/internal/grammar"
	"costar/internal/grammarlint"
	"costar/internal/lexer"
	"costar/internal/parser"
	"costar/internal/source"
	"costar/internal/transform"
	"costar/internal/tree"
)

// Core re-exported types.
type (
	// Grammar is a BNF grammar (see internal/grammar).
	Grammar = grammar.Grammar
	// Production is one grammar rule X → γ.
	Production = grammar.Production
	// Symbol is a terminal or nonterminal occurrence.
	Symbol = grammar.Symbol
	// Token is a (terminal, literal) input pair.
	Token = grammar.Token
	// Tree is a parse tree.
	Tree = tree.Tree
	// Parser is a reusable parsing session with a persistent SLL cache.
	Parser = parser.Parser
	// Options configures a Parser.
	Options = parser.Options
	// Result is a parse outcome: Unique(tree), Ambig(tree), Reject, Error.
	Result = parser.Result
	// Limits bounds the resources one parse may consume: machine steps,
	// tokens, stack depth, prediction closure work, tree nodes. The zero
	// value is unlimited; each exhausted limit surfaces as a structured
	// Error result naming the limit — never a false Reject.
	Limits = parser.Limits
	// Usage reports a parse's resource high-water marks; every Result
	// carries one, so budgets can be set from measured headroom.
	Usage = parser.Usage
	// Lexer is a compiled lexical specification.
	Lexer = lexer.Lexer
	// TokenSource is a demand-driven token cursor: the parser pulls tokens
	// through it on demand and only a sliding lookahead window stays
	// resident, so inputs of any length parse in bounded memory. Build one
	// with NewTokenSource (from a pull function) or obtain one from a
	// language's Cursor; pass it to Parser.ParseSource.
	TokenSource = source.Cursor
	// Diagnostic is one positioned, severity-tagged finding in the unified
	// diagnostics layer (see internal/diag): every failure shape — lexer
	// errors, machine rejections, resource-limit errors, and recovery
	// repairs — flows through this one type from the engine to the CLI.
	Diagnostic = diag.Diagnostic
	// Severity ranks a Diagnostic: Info, Warning, or Error.
	Severity = diag.Severity
	// Pos locates a Diagnostic: a token index into the parsed word, plus
	// byte offset and line/column when the source text is known (lexer
	// errors). Unknown components are -1 (Token, Offset) or 0 (Line, Col).
	Pos = diag.Pos
	// VetReport is the result of Vet: structured, positioned diagnostics
	// over a grammar (see internal/grammarlint).
	VetReport = grammarlint.Report
	// VetDiagnostic is one finding in a VetReport.
	VetDiagnostic = grammarlint.Diagnostic
	// Certificate attests that Vet found a grammar well-formed and free of
	// left recursion; Certify attaches one, switching later Parser sessions
	// into certified mode.
	Certificate = grammar.Certificate
	// Artifact is an ahead-of-time grammar artifact: compiled tables,
	// analysis fixpoints, certificate, and an offline-warmed SLL DFA cache
	// in one versioned binary container (see internal/artifact). Build one
	// with Parser.ExportArtifact (after warming the session on a corpus),
	// serialize with EncodeArtifact, and reconstruct near-instant sessions
	// with NewParserFromArtifact.
	Artifact = artifact.Artifact
)

// Result kinds.
const (
	// Unique: the returned tree is the sole derivation of the input.
	Unique = parser.Unique
	// Ambig: the input has several derivations; one tree is returned.
	Ambig = parser.Ambig
	// Reject: the input is not in the grammar's language.
	Reject = parser.Reject
	// Error: left recursion was detected (or an internal invariant broke,
	// which the test suite shows cannot happen for well-formed grammars).
	Error = parser.Error
	// Recovered: the input is not in the language, but recovering parse
	// mode (Options.Recover, or ParseRecover) repaired it — the Result
	// carries a partial tree whose error nodes cover the repaired spans
	// and one positioned Diagnostic per repair. Only produced when
	// recovery is on; never a silent accept (Accepts treats it as false).
	Recovered = parser.Recovered
)

// Diagnostic severities.
const (
	SeverityInfo    = diag.Info
	SeverityWarning = diag.Warning
	SeverityError   = diag.Error
)

// T constructs a terminal symbol.
func T(name string) Symbol { return grammar.T(name) }

// NT constructs a nonterminal symbol.
func NT(name string) Symbol { return grammar.NT(name) }

// Tok constructs a token.
func Tok(terminal, literal string) Token { return grammar.Tok(terminal, literal) }

// Words builds a token word whose literals equal the terminal names —
// convenient for toy grammars and tests.
func Words(terminals ...string) []Token {
	w := make([]Token, len(terminals))
	for i, t := range terminals {
		w[i] = grammar.Tok(t, t)
	}
	return w
}

// NewGrammar builds a grammar from productions (call Validate, or use
// NewParser which validates).
func NewGrammar(start string, prods []Production) *Grammar {
	return grammar.New(start, prods)
}

// ParseBNF reads a grammar from BNF text ("S -> A c | A d ; A -> a A | b").
func ParseBNF(src string) (*Grammar, error) { return grammar.ParseBNF(src) }

// MustParseBNF is ParseBNF panicking on error.
func MustParseBNF(src string) *Grammar { return grammar.MustParseBNF(src) }

// NewParser validates g and builds a parsing session.
func NewParser(g *Grammar, opts Options) (*Parser, error) { return parser.New(g, opts) }

// MustNewParser is NewParser panicking on error.
func MustNewParser(g *Grammar, opts Options) *Parser { return parser.MustNew(g, opts) }

// Parse is the one-shot API of the paper's Section 3.1: parse w from start
// in g.
func Parse(g *Grammar, start string, w []Token) Result { return parser.Parse(g, start, w) }

// ParseContext is Parse under a context and resource limits: cancellation,
// deadline expiry, or an exhausted limit halts the engine within a bounded
// amount of work and surfaces as a structured Error result — never a false
// Reject — with the measured high-water marks in Result.Usage. Parser
// sessions offer the same as methods (ParseContext, ParseReaderContext,
// ParseAllContext, ...) with Limits configured once in Options.
func ParseContext(ctx context.Context, g *Grammar, start string, w []Token, limits Limits) Result {
	return parser.ParseContext(ctx, g, start, w, limits)
}

// ParseRecover is Parse in recovering mode: a rejected input is repaired by
// panic-mode error recovery (skip / insert / pop / drop guided by the
// grammar's FOLLOW and anchor sets) and comes back as a Recovered result —
// a partial tree covering the whole input, with error nodes over the
// repaired spans and one positioned Diagnostic per repair, so a caller can
// report several syntax errors from a single run. Inputs in the language
// parse exactly as Parse does (recovery activates only after a would-be
// Reject). Sessions offer the same via Options.Recover, with the repair
// budget bounded by Limits.MaxRepairs.
func ParseRecover(g *Grammar, start string, w []Token) Result {
	return parser.ParseRecover(g, start, w)
}

// ParseAll parses every word from start in g on a pool of workers
// goroutines (workers <= 0 means GOMAXPROCS), all sharing one SLL DFA
// cache; results are in input order. For repeated batches construct a
// Parser once and call its ParseAll method — sessions are safe for
// concurrent use and keep the DFA warm across batches.
func ParseAll(g *Grammar, start string, words [][]Token, workers int) []Result {
	return parser.ParseAll(g, start, words, workers)
}

// ParseAllContext is ParseAll under a context and resource limits. A
// canceled batch stops promptly: in-flight parses abort through their
// governors, remaining items are drained with Canceled results (every slot
// is filled), and no goroutine outlives the call. Items are isolated — one
// item's panic or blowup is that item's Error result, and the batch goes on.
func ParseAllContext(ctx context.Context, g *Grammar, start string, words [][]Token, workers int, limits Limits) []Result {
	return parser.ParseAllContext(ctx, g, start, words, workers, limits)
}

// ParseReader lexes r incrementally with lex and parses the token stream
// from start in g — the streaming counterpart of Parse. Lexing and parsing
// are interleaved: tokens are produced only as the parser's lookahead needs
// them, and memory stays bounded by the deepest lookahead any single
// prediction uses, not by the input length. Lexing or reader failures
// surface as Error results, never as false accepts.
func ParseReader(g *Grammar, start string, lex *Lexer, r io.Reader) Result {
	return parser.ParseReader(g, start, lex, r)
}

// ParseReaderContext is ParseReader under a context and resource limits.
// Cancellation is observed between machine steps and prediction closure
// expansions; a Read already blocked in r cannot be interrupted (use a
// context-aware reader for that), but no further reads are issued once the
// context ends, and a reader that fails with the context's error surfaces
// as the same structured Canceled/DeadlineExceeded result.
func ParseReaderContext(ctx context.Context, g *Grammar, start string, lex *Lexer, r io.Reader, limits Limits) Result {
	return parser.ParseReaderContext(ctx, g, start, lex, r, limits)
}

// NewTokenSource builds a TokenSource for g from a pull function: each call
// returns the next token, false at end of input, or an error (sticky; the
// parser reports it as an Error result). Lexer.Pull and a language's Pull
// have exactly this shape.
func NewTokenSource(g *Grammar, pull func() (Token, bool, error)) *TokenSource {
	return source.FromPull(g.Compiled(), pull)
}

// SliceSource wraps an in-memory token word as a TokenSource (the fully
// resident special case; Parse does this internally).
func SliceSource(g *Grammar, w []Token) *TokenSource {
	return source.FromTokens(g.Compiled(), w)
}

// LoadG4 compiles a grammar in the ANTLR-4-like syntax (parser rules with
// EBNF operators, lexer rules with -> skip): it returns the desugared BNF
// grammar and the compiled lexer — the paper's grammar-conversion pipeline.
func LoadG4(src string) (*Grammar, *Lexer, error) {
	f, err := g4.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	g, err := ebnf.Desugar(f.Parser)
	if err != nil {
		return nil, nil, err
	}
	l, err := lexer.New(f.Lexer)
	if err != nil {
		return nil, nil, err
	}
	return g, l, nil
}

// MustLoadG4 is LoadG4 panicking on error.
func MustLoadG4(src string) (*Grammar, *Lexer) {
	g, l, err := LoadG4(src)
	if err != nil {
		panic(err)
	}
	return g, l
}

// ValidateTree checks that v is a correct derivation of w from start in g —
// the executable derivation relation of the paper's Figure 3. The parser's
// soundness theorem says returned trees always pass; this lets applications
// double-check untrusted trees too.
func ValidateTree(g *Grammar, start string, v *Tree, w []Token) error {
	return tree.Validate(g, grammar.NT(start), v, w)
}

// Vet statically verifies g: well-formedness, left recursion (direct,
// indirect, and hidden behind nullable prefixes), derivation cycles,
// duplicate productions, unreachable and unproductive nonterminals, and
// SLL lookahead-conflict heuristics. The report carries positioned
// diagnostics; Report.Certifiable tells whether Certify would succeed.
func Vet(g *Grammar) *VetReport { return grammarlint.Check(g) }

// Certify runs Vet and, when no error-severity diagnostics exist, attaches
// a fingerprint-bound Certificate to the grammar. Parser sessions built
// afterwards run in certified mode: the dynamic left-recursion check is
// provably unreachable (Theorem 5.8) and demoted to a debug assertion,
// with bit-identical parse results. On refusal the report explains why.
func Certify(g *Grammar) (*Certificate, *VetReport, error) { return grammarlint.Certify(g) }

// EncodeArtifact serializes an artifact to its versioned binary form
// (magic, format version, sections, integrity checksum). Encoding is
// deterministic: equal artifacts produce identical bytes.
func EncodeArtifact(a *Artifact) []byte { return artifact.Encode(a) }

// DecodeArtifact parses artifact bytes. The decoder never panics:
// truncated, corrupted, or non-artifact input yields a structured error
// (artifact.ErrCorrupt / ErrNotArtifact / ErrVersion, matchable with
// errors.Is). A decoded artifact is not yet trusted — the verification
// happens when a session is built from it.
func DecodeArtifact(b []byte) (*Artifact, error) { return artifact.Decode(b) }

// NewParserFromArtifact builds a session from an artifact, skipping grammar
// compilation, the analysis fixpoints, and cache warm-up. The load verifies
// what it skips: the grammar is recompiled from the dense tables and must
// reproduce the artifact's recorded fingerprint, a certificate (when
// present) is re-verified against that fingerprint — a tampered artifact is
// rejected, never loaded silently uncertified — and the DFA snapshot is
// bounds-checked and re-interned into cache-owned memory. The session
// starts with the artifact's warmed DFA and parses exactly like a
// source-compiled session warmed on the same corpus.
func NewParserFromArtifact(a *Artifact, opts Options) (*Parser, error) {
	return parser.NewFromArtifact(a, opts)
}

// EliminateLeftRecursion rewrites g into an equivalent grammar without
// left recursion (Paull's algorithm) so that ALL(*) can parse it — the
// grammar-rewriting step ANTLR performs implicitly and the paper defers to
// future work (Section 4.1). Grammars whose left recursion is entangled
// with ε (nullable or hidden left recursion, unit cycles) are refused with
// an explanatory error rather than rewritten incorrectly.
func EliminateLeftRecursion(g *Grammar) (*Grammar, error) {
	return transform.EliminateLeftRecursion(g)
}
