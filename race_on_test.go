//go:build race

package costar

// raceEnabled: see race_off_test.go.
const raceEnabled = true
