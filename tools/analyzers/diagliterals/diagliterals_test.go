package diagliterals

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"costar/tools/analyzers/analyzerkit"
)

// check parses the named sources as one package and runs the analyzer.
func check(t *testing.T, files map[string]string) []analyzerkit.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	var parsed []*ast.File
	var diags []analyzerkit.Diagnostic
	for name, src := range files {
		f, err := parser.ParseFile(fset, name, src, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		parsed = append(parsed, f)
	}
	pass := &analyzerkit.Pass{
		Analyzer: Analyzer,
		Fset:     fset,
		Files:    parsed,
		PkgName:  parsed[0].Name.Name,
		PkgPath:  "test",
	}
	pass.SetReport(func(d analyzerkit.Diagnostic) { diags = append(diags, d) })
	if err := Analyzer.Run(pass); err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestFlagsForeignLiterals(t *testing.T) {
	diags := check(t, map[string]string{
		"fabricate.go": `package parser
func evil() {
	_ = machine.Error{Reason: "made up"}
	_ = &lexer.Error{Line: 1, Col: 1, Snippet: "fake"}
	ds := []grammarlint.Diagnostic{{Rule: "x"}, grammarlint.Diagnostic{Rule: "y"}}
	_ = ds
}`,
	})
	// Four: the two struct literals, the slice literal (elided element
	// types fabricate the same values), and the explicit element.
	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics, want 4: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "diag.Diagnostic") {
			t.Errorf("diagnostic lacks the redirect to the diag layer: %s", d)
		}
	}
}

func TestAllowsHomePackagesAndTests(t *testing.T) {
	diags := check(t, map[string]string{
		// Home package: unqualified literal of its own type.
		"machine.go": `package machine
func raise() error { return &Error{Reason: "mine"} }`,
	})
	if len(diags) != 0 {
		t.Fatalf("false positives in home package: %v", diags)
	}
	diags = check(t, map[string]string{
		// Test file: fabrication is how conversion gets exercised.
		"conv_test.go": `package parser
func fixture() { _ = lexer.Error{Line: 1} }`,
	})
	if len(diags) != 0 {
		t.Fatalf("false positives in test file: %v", diags)
	}
}

func TestIgnoresUnrelatedSelectors(t *testing.T) {
	diags := check(t, map[string]string{
		"fine.go": `package cli
func ok() {
	_ = diag.Diagnostic{Message: "the unified layer is for everyone"}
	_ = other.Error{}
	_ = machine.Options{}
	var e machine.Error // declaration without a literal: zero value, no fabricated position
	_ = e
}`,
	})
	if len(diags) != 0 {
		t.Fatalf("false positives: %v", diags)
	}
}
