// Package diagliterals flags composite literals of the pre-diag error
// types — machine.Error, lexer.Error, grammarlint.Diagnostic — outside
// their home packages.
//
// Those structs are transport: each layer raises its own failure shape and
// converts it to a diag.Diagnostic at the boundary (the Diag methods own
// the position math and the snippet-copy lifetime contract). A literal
// built anywhere else bypasses that conversion — it fabricates a failure
// the owning layer never raised, with coordinates nobody computed — and it
// is how positioned-but-wrong errors crept in before the unified
// diagnostics layer existed. Consumers should construct diag.Diagnostic
// values (diag.New / diag.Errorf) directly instead.
//
// Test files are exempt: tests legitimately build these literals to
// exercise conversion and rendering.
package diagliterals

import (
	"go/ast"
	"strings"

	"costar/tools/analyzers/analyzerkit"
)

// owned maps a package qualifier to the error type it owns. Matching is
// syntactic (pkgname.Type composite literals); the qualifiers are the
// packages' declared names, which every importer in the repo uses
// unrenamed — the analyzer's tests pin that down for the literal sites
// that exist today, and an import renamed to dodge the lint would not
// survive review.
var owned = map[string]string{
	"machine":     "Error",
	"lexer":       "Error",
	"grammarlint": "Diagnostic",
}

// Analyzer is the exported instance for multichecker bundling.
var Analyzer = &analyzerkit.Analyzer{
	Name: "diagliterals",
	Doc: "flag composite literals of pre-diag error types outside their home packages\n\n" +
		"machine.Error, lexer.Error, and grammarlint.Diagnostic are raised by their own\n" +
		"layers and converted to diag.Diagnostic at the boundary; constructing them\n" +
		"elsewhere bypasses the unified diagnostics layer and its position/snippet\n" +
		"lifetime contracts.",
	Run: run,
}

func run(pass *analyzerkit.Pass) error {
	if _, isOwner := owned[pass.PkgName]; isOwner {
		// Inside a home package the type is unqualified, so qualified
		// literals cannot refer to it anyway — but skip early for clarity.
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			typ := lit.Type
			// A slice/array literal with elided element types
			// ([]lexer.Error{{...}}) fabricates the same values; flag it
			// once at the composite.
			if arr, ok := typ.(*ast.ArrayType); ok {
				typ = arr.Elt
			}
			sel, ok := typ.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || owned[pkg.Name] != sel.Sel.Name {
				return true
			}
			if strings.HasSuffix(pass.Filename(lit.Pos()), "_test.go") {
				return true
			}
			pass.Reportf(lit.Pos(),
				"composite literal of %s.%s outside its home package: these error shapes are raised by their own layer and converted via Diag(); build a diag.Diagnostic (diag.New / diag.Errorf) instead",
				pkg.Name, sel.Sel.Name)
			return true
		})
	}
	return nil
}
