// Fixture: pre-diag error shapes fabricated outside their home layers.
// The analyzer is syntactic (qualified composite literals), so this
// fixture only needs to parse; the identifiers deliberately mirror how a
// consumer package would reference the real types.
package cli

func fabricate(pos int) any {
	return machine.Error{Pos: pos} // want "outside its home package"
}

func fabricateSlice() any {
	return []lexer.Error{{}} // want "outside its home package"
}

// allowed: consumers build unified diagnostics directly.
func allowed(msg string) any {
	return diag.Diagnostic{Message: msg}
}
