package analyzerkit

// Baseline files let a new analyzer land before every pre-existing finding
// is burned down: known findings are recorded with stable fingerprints and
// filtered from output until fixed. A fingerprint deliberately excludes
// line/column — edits elsewhere in a file must not invalidate the
// baseline — and duplicate findings are matched by occurrence count.
//
// The format is one tab-separated line per finding:
//
//	analyzer<TAB>file<TAB>message
//
// sorted, with '#'-prefixed comment lines ignored. The repo ships an empty
// baseline (every real finding was fixed or annotated); the mechanism
// exists so future analyzers can be introduced incrementally.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// fingerprint is the stable identity of one diagnostic.
func fingerprint(d Diagnostic) string {
	file := filepath.ToSlash(d.Pos.Filename)
	// Message text goes in verbatim — analyzers phrase messages around
	// stable facts (type, field, function names), not positions.
	return d.Analyzer + "\t" + file + "\t" + strings.ReplaceAll(d.Message, "\t", " ")
}

// loadBaseline reads a baseline file into fingerprint → allowed count.
// A missing file is an empty baseline.
func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]int{}, nil
		}
		return nil, err
	}
	counts := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\t") < 2 {
			return nil, fmt.Errorf("%s:%d: malformed baseline line (want analyzer<TAB>file<TAB>message)", path, i+1)
		}
		counts[line]++
	}
	return counts, nil
}

// filterBaseline removes baselined findings (by fingerprint, up to the
// recorded occurrence count) and returns the survivors plus the number
// of baseline entries that no longer match anything (stale entries).
func filterBaseline(diags []Diagnostic, counts map[string]int) (fresh []Diagnostic, stale int) {
	remaining := make(map[string]int, len(counts))
	for k, v := range counts {
		remaining[k] = v
	}
	for _, d := range diags {
		fp := fingerprint(d)
		if remaining[fp] > 0 {
			remaining[fp]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, v := range remaining {
		stale += v
	}
	return fresh, stale
}

// writeBaseline regenerates a baseline file from the given findings.
func writeBaseline(path string, diags []Diagnostic) error {
	lines := make([]string, 0, len(diags))
	for _, d := range diags {
		lines = append(lines, fingerprint(d))
	}
	sort.Strings(lines)
	var b strings.Builder
	b.WriteString("# costar-lint baseline: known findings filtered from output until fixed.\n")
	b.WriteString("# Regenerate with `make lint-baseline`. The checked-in baseline must stay empty.\n")
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o666)
}
