package analyzerkit

// A lightweight intra-procedural taint walker over go/types-resolved ASTs,
// with per-package function summaries so facts propagate across calls
// within a package. It is deliberately modest — flow-insensitive within a
// function (a fixpoint over assignments, so loops and reassignment chains
// converge), field-insensitive on local structs, and silent about calls it
// cannot resolve — which is the right bias for a contract checker: the
// specs (TaintSpec) name the handful of scratch sources and deep-copy
// sanitizers precisely, and the Type filter stops taint from bleeding
// through value types that cannot alias pooled memory.
//
// Taint is tracked as a bitmask: bit 0 means "derived from a Source", bit
// i+1 means "derived from parameter i of the enclosing function". The
// parameter bits exist only to compute call summaries — for a function
// whose return value carries bit i+1, callers substitute the mask of
// argument i at each call site — so source taint crosses intra-package
// call boundaries in both directions (returned scratch, and scratch
// laundered through a helper).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// taintMask is a taint lattice element; see the package comment above.
type taintMask uint64

const sourceBit taintMask = 1

// maxTrackedParams bounds how many leading parameters get their own bit.
const maxTrackedParams = 16

func paramBit(i int) taintMask {
	if i >= maxTrackedParams {
		return 0
	}
	return 1 << (i + 1)
}

// TaintSpec configures a Flow engine. All hooks may assume Pass.Info is
// non-nil (Flow refuses to build without type information).
type TaintSpec struct {
	// Source reports whether evaluating e introduces fresh taint. It is
	// consulted for call expressions and selector (field read)
	// expressions.
	Source func(p *Pass, e ast.Expr) bool
	// Sanitizer reports whether call's result is clean regardless of its
	// arguments — the recognized deep-copy functions.
	Sanitizer func(p *Pass, call *ast.CallExpr) bool
	// Propagate, when it returns (expr, true), makes call's result
	// inherit expr's taint — for known alias-preserving helpers (e.g.
	// substring-returning strings functions, arena allocation methods).
	// Consulted after Sanitizer and Source.
	Propagate func(p *Pass, call *ast.CallExpr) (ast.Expr, bool)
	// Type reports whether a value of type t can carry taint at all.
	// Returning false cuts propagation: copying a scalar or a
	// by-value element out of tainted structure yields a clean value.
	// nil means every type can carry taint.
	Type func(t types.Type) bool
}

// summary describes one package function: the taint mask of its return
// values, expressed over the source bit and its own parameter bits.
type summary struct {
	returns taintMask
}

// Flow is the per-package taint engine. Build one with NewFlow (which
// computes call summaries for every function declaration in the package),
// then Analyze a function and query Tainted on expressions inside it.
type Flow struct {
	pass      *Pass
	spec      TaintSpec
	summaries map[*types.Func]summary
	decls     map[*types.Func]*ast.FuncDecl

	// Per-Analyze state.
	tainted map[types.Object]taintMask
	params  map[types.Object]int
}

// NewFlow builds the engine and runs the package-level summary fixpoint.
// Returns nil when pass has no type information.
func NewFlow(pass *Pass, spec TaintSpec) *Flow {
	if pass.Info == nil {
		return nil
	}
	f := &Flow{
		pass:      pass,
		spec:      spec,
		summaries: map[*types.Func]summary{},
		decls:     map[*types.Func]*ast.FuncDecl{},
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				f.decls[fn] = fd
			}
		}
	}
	// Fixpoint: re-summarize until no summary changes. Package call
	// graphs are shallow; this converges in a handful of rounds.
	for range [8]struct{}{} {
		changed := false
		for fn, fd := range f.decls {
			s := f.summarize(fn, fd)
			if s != f.summaries[fn] {
				f.summaries[fn] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return f
}

// summarize computes one function's summary with parameters seeded to
// their own bits.
func (f *Flow) summarize(fn *types.Func, fd *ast.FuncDecl) summary {
	f.seed(fn, fd, true)
	f.propagate(fd.Body)
	var ret taintMask
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a closure's returns are not fn's returns
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				ret |= f.eval(res)
			}
		}
		return true
	})
	return summary{returns: ret}
}

// Analyze runs the local fixpoint for fd with parameters clean, after
// which Tainted answers queries for expressions within fd.
func (f *Flow) Analyze(fd *ast.FuncDecl) {
	if f == nil || fd.Body == nil {
		return
	}
	fn, _ := f.pass.Info.Defs[fd.Name].(*types.Func)
	f.seed(fn, fd, false)
	f.propagate(fd.Body)
}

// Tainted reports whether e derives from a Source in the function last
// given to Analyze.
func (f *Flow) Tainted(e ast.Expr) bool {
	if f == nil {
		return false
	}
	return f.eval(e)&sourceBit != 0
}

// seed resets per-function state; withParamBits seeds each parameter with
// its own bit (summary mode) instead of clean (analysis mode).
func (f *Flow) seed(fn *types.Func, fd *ast.FuncDecl, withParamBits bool) {
	f.tainted = map[types.Object]taintMask{}
	f.params = map[types.Object]int{}
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		f.params[p] = i
		if withParamBits {
			f.tainted[p] = paramBit(i)
		}
	}
}

// propagate runs the assignment fixpoint over body.
func (f *Flow) propagate(body *ast.BlockStmt) {
	for range [16]struct{}{} {
		if !f.sweep(body) {
			return
		}
	}
}

// sweep makes one pass over every statement, returning whether any
// object's mask grew.
func (f *Flow) sweep(body *ast.BlockStmt) bool {
	changed := false
	taint := func(obj types.Object, m taintMask) {
		if obj == nil || m == 0 {
			return
		}
		if old := f.tainted[obj]; old|m != old {
			f.tainted[obj] = old | m
			changed = true
		}
	}
	// taintTarget attributes a mask to the object ultimately written
	// through: storing taint into x.f, x[i], or *x taints x itself
	// (the local container now reaches tainted memory).
	var taintTarget func(e ast.Expr, m taintMask)
	taintTarget = func(e ast.Expr, m taintMask) {
		switch e := e.(type) {
		case *ast.Ident:
			taint(f.objOf(e), m)
		case *ast.ParenExpr:
			taintTarget(e.X, m)
		case *ast.StarExpr:
			taintTarget(e.X, m)
		case *ast.SelectorExpr:
			taintTarget(e.X, m)
		case *ast.IndexExpr:
			taintTarget(e.X, m)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				// Multi-value: every lhs gets the rhs mask.
				m := f.eval(n.Rhs[0])
				for _, lhs := range n.Lhs {
					taintTarget(lhs, m)
				}
				break
			}
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) {
					taintTarget(lhs, f.eval(n.Rhs[i]))
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					taint(f.objOf(name), f.eval(n.Values[i]))
				} else if len(n.Values) == 1 {
					taint(f.objOf(name), f.eval(n.Values[0]))
				}
			}
		case *ast.RangeStmt:
			m := f.eval(n.X)
			taintTarget(n.Key, m)
			if n.Value != nil {
				taintTarget(n.Value, f.filter(m, n.Value))
			}
		case *ast.CallExpr:
			// copy(dst, src) aliases src's elements into dst.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "copy" && len(n.Args) == 2 {
				taintTarget(n.Args[0], f.eval(n.Args[1]))
			}
		}
		return true
	})
	return changed
}

// objOf resolves an identifier to its object (nil for blank or unresolved).
func (f *Flow) objOf(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj, ok := f.pass.Info.Defs[id]; ok {
		return obj
	}
	return f.pass.Info.Uses[id]
}

// filter applies the spec's Type gate to a mask for expression e.
func (f *Flow) filter(m taintMask, e ast.Expr) taintMask {
	if m == 0 || f.spec.Type == nil {
		return m
	}
	if tv, ok := f.pass.Info.Types[e]; ok && tv.Type != nil {
		if !f.spec.Type(tv.Type) {
			return 0
		}
	}
	return m
}

// eval computes the taint mask of an expression.
func (f *Flow) eval(e ast.Expr) taintMask {
	return f.filter(f.evalRaw(e), e)
}

func (f *Flow) evalRaw(e ast.Expr) taintMask {
	switch e := e.(type) {
	case *ast.Ident:
		return f.tainted[f.objOf(e)]
	case *ast.ParenExpr:
		return f.eval(e.X)
	case *ast.StarExpr:
		return f.eval(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return f.eval(e.X)
		}
		return 0 // <-ch, !b, -n: fresh or scalar values
	case *ast.SelectorExpr:
		if f.spec.Source != nil && f.spec.Source(f.pass, e) {
			return sourceBit
		}
		// A field of a tainted base is tainted (field-insensitive);
		// a package-qualified name is not an access at all.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := f.pass.Info.Uses[id].(*types.PkgName); isPkg {
				return 0
			}
		}
		return f.eval(e.X)
	case *ast.IndexExpr:
		return f.eval(e.X)
	case *ast.SliceExpr:
		return f.eval(e.X)
	case *ast.TypeAssertExpr:
		return f.eval(e.X)
	case *ast.CompositeLit:
		var m taintMask
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				m |= f.eval(kv.Value)
			} else {
				m |= f.eval(elt)
			}
		}
		return m
	case *ast.BinaryExpr:
		// Binary ops yield fresh values (string concat allocates a new
		// backing array; pointer arithmetic does not exist).
		return 0
	case *ast.CallExpr:
		return f.evalCall(e)
	}
	return 0
}

func (f *Flow) evalCall(call *ast.CallExpr) taintMask {
	// Conversions: converting to a basic type (notably string(b),
	// []byte(s) handled below as composite of basic) copies; pointer
	// and struct conversions preserve aliasing.
	if tv, ok := f.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		t := tv.Type.Underlying()
		if _, basic := t.(*types.Basic); basic {
			return 0
		}
		if s, ok := t.(*types.Slice); ok {
			if _, basic := s.Elem().Underlying().(*types.Basic); basic {
				return 0 // []byte(string) copies
			}
		}
		return f.eval(call.Args[0])
	}
	if f.spec.Sanitizer != nil && f.spec.Sanitizer(f.pass, call) {
		return 0
	}
	if f.spec.Source != nil && f.spec.Source(f.pass, call) {
		return sourceBit
	}
	if f.spec.Propagate != nil {
		if from, ok := f.spec.Propagate(f.pass, call); ok {
			return f.eval(from)
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "append":
			// append may alias its first argument's backing array, and
			// the appended elements are retained — but a spread of a
			// slice whose *elements* cannot carry taint is a clean copy
			// (append([]int(nil), scratchInts...) is a sanctioned
			// deep-copy idiom).
			m := f.eval(call.Args[0])
			for i, a := range call.Args[1:] {
				am := f.eval(a)
				if call.Ellipsis.IsValid() && i == len(call.Args)-2 {
					am = f.filterSliceElem(am, a)
				}
				m |= am
			}
			return m
		case "new", "make", "len", "cap", "copy", "min", "max", "delete", "clear":
			return 0
		}
	}
	// Calls into the same package: substitute argument masks per the
	// callee's summary.
	if fn := CalleeOf(f.pass.Info, call); fn != nil {
		if sum, ok := f.summaries[fn]; ok {
			var m taintMask
			if sum.returns&sourceBit != 0 {
				m |= sourceBit
			}
			for i, a := range call.Args {
				if sum.returns&paramBit(i) != 0 {
					m |= f.eval(a)
				}
			}
			// A method summary cannot track its receiver here; a
			// method on a tainted receiver returning reachable state
			// is covered by the Source hook instead.
			return m
		}
	}
	// Unresolved or extra-package method call: a method on a tainted
	// receiver is assumed to return a view of it (the caller's eval
	// filters the result by Type, so value-returning accessors stay
	// clean); anything else allocates fresh memory. The specs name
	// further exceptions via Sanitizer/Propagate.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if _, isSel := f.pass.Info.Selections[sel]; isSel {
			return f.eval(sel.X)
		}
	}
	return 0
}

// filterSliceElem zeroes a mask when e is a slice whose element type
// cannot carry taint (its elements are copied by value).
func (f *Flow) filterSliceElem(m taintMask, e ast.Expr) taintMask {
	if m == 0 || f.spec.Type == nil {
		return m
	}
	tv, ok := f.pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return m
	}
	s, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return m
	}
	if !f.spec.Type(s.Elem()) {
		return 0
	}
	return m
}
