// Package analyzerkit is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects the parsed
// files of one package through a Pass and reports positioned diagnostics.
// The driver half (driver.go) runs analyzers either standalone over package
// directories or as a `go vet -vettool` backend.
//
// Two tiers of analysis coexist. Syntactic analyzers inspect the parsed
// ASTs only — sound for invariants over unexported fields, which confines
// potential writes to their owning packages. Typed analyzers (NeedTypes)
// additionally receive go/types resolution (Pass.Pkg / Pass.Info) from the
// kit's Loader (types.go), which imports dependencies from vet-provided
// export data or straight from source; on top of that, flow.go provides an
// intra-procedural taint/escape walker with per-package call summaries, and
// paths.go an every-path must-analysis — the machinery the contract
// checkers (scratchescape, windowalias, governortick, lockorder) build on.
package analyzerkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Analyzer is one static check, mirroring the x/tools analysis.Analyzer
// shape so the checks could migrate to the real framework unchanged.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -NAME=0 flags.
	Name string
	// Doc is a one-paragraph description, shown by -help.
	Doc string
	// Run inspects one package through pass and reports findings via
	// pass.Reportf. A returned error aborts the whole run (it means the
	// analyzer itself failed, not that the code has findings).
	Run func(pass *Pass) error
	// NeedTypes requests go/types resolution: the driver populates
	// Pass.Pkg and Pass.Info before Run. Type-checking is paid only for
	// packages some requesting analyzer Matches.
	NeedTypes bool
	// Match, when non-nil, gates the analyzer to packages it cares about
	// (by declared package name and import/directory path). A nil Match
	// runs everywhere. Matching cheaply up front is what keeps typed
	// analysis from taxing every `go vet` invocation.
	Match func(pkgName, pkgPath string) bool
}

// Pass carries one package's parsed files to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files, in driver order.
	Files []*ast.File
	// PkgName is the declared package name (the `package foo` clause).
	PkgName string
	// PkgPath is the import path in vet mode, or the directory path in
	// standalone mode. Diagnostics should not depend on which.
	PkgPath string

	// Pkg and Info carry go/types resolution for NeedTypes analyzers
	// (nil/empty otherwise, or when the driver could not type-check —
	// see TypesErr). Info has Types, Defs, Uses, and Selections filled.
	Pkg  *types.Package
	Info *types.Info
	// TypesErr records why type resolution is unavailable or partial.
	// Typed analyzers should degrade rather than crash: with a nil Info
	// they may fall back to syntactic matching or return nil.
	TypesErr error

	report func(Diagnostic)
	allows map[string]map[int]allow // filename → line → suppression
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

// String renders the diagnostic in the canonical file:line:col form that
// editors and `go vet` both understand.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// SetReport installs the diagnostic sink Reportf forwards to. The driver
// calls it when assembling a pass; analyzer tests call it to capture
// findings in memory.
func (p *Pass) SetReport(fn func(Diagnostic)) { p.report = fn }

// Reportf records a finding at pos — unless the finding's line (or the
// line above it) carries a justified suppression comment for this analyzer:
//
//	//costar:allow <analyzer>[,<analyzer>...] -- <why this is sound>
//
// The justification after " -- " is mandatory; an allow comment without one
// is itself reported, so every suppression in the tree documents its
// reasoning.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if a, ok := p.allowAt(position); ok {
		if a.reason == "" {
			p.report(Diagnostic{
				Pos:      relPosition(position),
				Message:  "costar:allow suppression without a justification (add ` -- <reason>`)",
				Analyzer: p.Analyzer.Name,
			})
		}
		return
	}
	p.report(Diagnostic{
		Pos:      relPosition(position),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// allow is one parsed //costar:allow directive.
type allow struct {
	analyzers map[string]bool
	reason    string
}

// allowAt reports whether a suppression for the running analyzer covers the
// given position (same line or the line immediately above).
func (p *Pass) allowAt(position token.Position) (allow, bool) {
	if p.allows == nil {
		p.allows = map[string]map[int]allow{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					a, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					cp := p.Fset.Position(c.Pos())
					byLine := p.allows[cp.Filename]
					if byLine == nil {
						byLine = map[int]allow{}
						p.allows[cp.Filename] = byLine
					}
					byLine[cp.Line] = a
				}
			}
		}
	}
	byLine := p.allows[position.Filename]
	for _, line := range [2]int{position.Line, position.Line - 1} {
		if a, ok := byLine[line]; ok && a.analyzers[p.Analyzer.Name] {
			return a, true
		}
	}
	return allow{}, false
}

// parseAllow parses a `//costar:allow names -- reason` comment.
func parseAllow(text string) (allow, bool) {
	rest, ok := strings.CutPrefix(text, "//costar:allow")
	if !ok {
		return allow{}, false
	}
	rest = strings.TrimSpace(rest)
	names, reason, _ := strings.Cut(rest, " -- ")
	a := allow{analyzers: map[string]bool{}, reason: strings.TrimSpace(reason)}
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			a.analyzers[n] = true
		}
	}
	return a, len(a.analyzers) > 0
}

// Filename returns the base name of the file containing pos — what
// constructor-file allowlists match against.
func (p *Pass) Filename(pos token.Pos) string {
	return filepath.Base(p.Fset.Position(pos).Filename)
}

// Write is one syntactic mutation site: the target of an assignment or
// IncDec statement, or the first argument of a delete() call.
type Write struct {
	// Target is the expression being written through.
	Target ast.Expr
	// Node is the statement or call performing the write, for positions.
	Node ast.Node
}

// Writes collects every syntactic mutation in f. Short variable
// declarations (`:=`) are excluded: their left-hand sides introduce new
// variables rather than writing through existing structure.
func Writes(f *ast.File) []Write {
	var out []Write
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range s.Lhs {
				out = append(out, Write{Target: lhs, Node: s})
			}
		case *ast.IncDecStmt:
			out = append(out, Write{Target: s.X, Node: s})
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "delete" && len(s.Args) > 0 {
				out = append(out, Write{Target: s.Args[0], Node: s})
			}
		}
		return true
	})
	return out
}

// SelectorsIn returns every SelectorExpr anywhere inside e — including
// inside index expressions, parens, stars, and call arguments — so a write
// target like (*m.edges.Load())[k] surfaces both `edges` and `Load`.
func SelectorsIn(e ast.Expr) []*ast.SelectorExpr {
	var out []*ast.SelectorExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			out = append(out, sel)
		}
		return true
	})
	return out
}

// ---------------------------------------------------------------------------
// Typed helpers shared by the contract analyzers
// ---------------------------------------------------------------------------

// Deref strips pointers off t.
func Deref(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// IsNamed reports whether t (possibly behind pointers) is the named type
// pkgName.typeName. Matching is by declared package name rather than full
// import path so that analyzer fixtures — self-contained replicas of the
// guarded packages under testdata — exercise the same spec the real
// packages are held to.
func IsNamed(t types.Type, pkgName, typeName string) bool {
	if t == nil {
		return false
	}
	n, ok := Deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == typeName &&
		obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// ReceiverOf resolves the method called by a selector call expression and
// returns the receiver's named type name and package name ("" when the call
// target is not a resolvable method). Both value and pointer receivers
// resolve to the same name.
func ReceiverOf(info *types.Info, call *ast.CallExpr) (pkgName, typeName, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || info == nil {
		return "", "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", "", ""
	}
	n, ok := Deref(sig.Recv().Type()).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", "", ""
	}
	return n.Obj().Pkg().Name(), n.Obj().Name(), fn.Name()
}

// FieldOf resolves a selector expression to the named struct type declaring
// the selected field. It returns ("", "", "") when sel is not a field
// selection or the base type is unresolvable.
func FieldOf(info *types.Info, sel *ast.SelectorExpr) (pkgName, typeName, field string) {
	if info == nil {
		return "", "", ""
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", "", ""
	}
	// Resolve against the type that actually declares the field (walking
	// the embedding path), so promoted fields still name their owner.
	t := selection.Recv()
	for _, idx := range selection.Index() {
		s, ok := Deref(t).Underlying().(*types.Struct)
		if !ok || idx >= s.NumFields() {
			return "", "", ""
		}
		f := s.Field(idx)
		if f.Name() == sel.Sel.Name {
			n, ok := Deref(t).(*types.Named)
			if !ok || n.Obj().Pkg() == nil {
				return "", "", ""
			}
			return n.Obj().Pkg().Name(), n.Obj().Name(), f.Name()
		}
		t = f.Type()
	}
	return "", "", ""
}

// CalleeOf resolves the function or method invoked by call ("" when the
// callee is dynamic or unresolvable). Methods report their bare name;
// package functions likewise — pair with ReceiverOf to disambiguate.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	if info == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
