// Package analyzerkit is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects the parsed
// (not type-checked) files of one package through a Pass and reports
// positioned diagnostics. The driver half (driver.go) runs analyzers either
// standalone over package directories or as a `go vet -vettool` backend.
//
// The repo's analyzers guard unexported invariants — writes to
// grammar.Compiled tables, mutation of shared DFA edge maps — so a
// syntactic analysis is sound here: the protected fields are unexported,
// which confines potential writes to their owning packages, and within one
// package a field name identifies the field up to intra-package aliasing
// that the analyzers' allowlists account for.
package analyzerkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
)

// Analyzer is one static check, mirroring the x/tools analysis.Analyzer
// shape so the checks could migrate to the real framework unchanged.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -NAME=0 flags.
	Name string
	// Doc is a one-paragraph description, shown by -help.
	Doc string
	// Run inspects one package through pass and reports findings via
	// pass.Reportf. A returned error aborts the whole run (it means the
	// analyzer itself failed, not that the code has findings).
	Run func(pass *Pass) error
}

// Pass carries one package's parsed files to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files, in driver order.
	Files []*ast.File
	// PkgName is the declared package name (the `package foo` clause).
	PkgName string
	// PkgPath is the import path in vet mode, or the directory path in
	// standalone mode. Diagnostics should not depend on which.
	PkgPath string

	report func(Diagnostic)
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

// String renders the diagnostic in the canonical file:line:col form that
// editors and `go vet` both understand.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// SetReport installs the diagnostic sink Reportf forwards to. The driver
// calls it when assembling a pass; analyzer tests call it to capture
// findings in memory.
func (p *Pass) SetReport(fn func(Diagnostic)) { p.report = fn }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Filename returns the base name of the file containing pos — what
// constructor-file allowlists match against.
func (p *Pass) Filename(pos token.Pos) string {
	return filepath.Base(p.Fset.Position(pos).Filename)
}

// Write is one syntactic mutation site: the target of an assignment or
// IncDec statement, or the first argument of a delete() call.
type Write struct {
	// Target is the expression being written through.
	Target ast.Expr
	// Node is the statement or call performing the write, for positions.
	Node ast.Node
}

// Writes collects every syntactic mutation in f. Short variable
// declarations (`:=`) are excluded: their left-hand sides introduce new
// variables rather than writing through existing structure.
func Writes(f *ast.File) []Write {
	var out []Write
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range s.Lhs {
				out = append(out, Write{Target: lhs, Node: s})
			}
		case *ast.IncDecStmt:
			out = append(out, Write{Target: s.X, Node: s})
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "delete" && len(s.Args) > 0 {
				out = append(out, Write{Target: s.Args[0], Node: s})
			}
		}
		return true
	})
	return out
}

// SelectorsIn returns every SelectorExpr anywhere inside e — including
// inside index expressions, parens, stars, and call arguments — so a write
// target like (*m.edges.Load())[k] surfaces both `edges` and `Load`.
func SelectorsIn(e ast.Expr) []*ast.SelectorExpr {
	var out []*ast.SelectorExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			out = append(out, sel)
		}
		return true
	})
	return out
}
