package analyzerkit

// AnalyzeDir runs one analyzer over the single package in dir with full
// source type-checking — the entry point the kittest fixture harness (and
// any ad-hoc debugging) uses, mirroring what the standalone driver does
// for real packages. Match gating applies: a fixture whose package name
// the analyzer does not Match produces no findings, which the harness
// surfaces as unfulfilled expectations rather than silently passing.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
)

// AnalyzeDir parses, type-checks (when the analyzer needs it), and runs
// an on the package in dir, returning its sorted findings.
func AnalyzeDir(an *Analyzer, dir string) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if files[0].Name == nil {
		return nil, fmt.Errorf("unnamed package in %s", dir)
	}
	for _, f := range files[1:] {
		if f.Name.Name != files[0].Name.Name {
			return nil, fmt.Errorf("%s holds multiple packages (%s, %s); fixtures are one package per directory",
				dir, files[0].Name.Name, f.Name.Name)
		}
	}
	loader := newSourceLoader(fset, dir)
	return runPackage(fset, files, dir, []*Analyzer{an}, loader)
}
