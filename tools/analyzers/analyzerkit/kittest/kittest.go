// Package kittest is the fixture-test harness for analyzerkit analyzers,
// a miniature of x/tools' analysistest: each fixture is one package
// directory under the analyzer's testdata, annotated with
//
//	someStatement() // want "regexp"
//
// comments. Run analyzes the package with full source type resolution and
// fails the test on any finding without a matching want on its line, and
// on any want left unmatched — so every fixture simultaneously proves a
// violation is caught (positive lines) and a correct pattern is accepted
// (the unannotated rest of the file).
package kittest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"costar/tools/analyzers/analyzerkit"
)

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// Run analyzes the fixture package in dir with an and checks findings
// against the fixture's want comments.
func Run(t *testing.T, an *analyzerkit.Analyzer, dir string) {
	t.Helper()
	wants, err := parseWants(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analyzerkit.AnalyzeDir(an, dir)
	if err != nil {
		t.Fatalf("analyzing %s: %v", dir, err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected finding at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a finding matching %q, got none", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// claim marks the first unhit expectation matching d and reports success.
func claim(wants []*want, d analyzerkit.Diagnostic) bool {
	for _, w := range wants {
		if w.hit || w.line != d.Pos.Line || filepath.Base(w.file) != filepath.Base(d.Pos.Filename) {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// parseWants collects every want comment in the fixture's files.
func parseWants(dir string) ([]*want, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var wants []*want
	fset := token.NewFileSet()
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat, err := unquoteWant(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s: %v", name, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want pattern %q: %v", name, pat, err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &want{file: name, line: pos.Line, re: re})
			}
		}
	}
	return wants, nil
}

// unquoteWant undoes the \" escaping the wantRE capture allows.
func unquoteWant(s string) (string, error) {
	return strings.ReplaceAll(strings.ReplaceAll(s, `\"`, `"`), `\\`, `\`), nil
}

// Fixtures returns the fixture package directories under an analyzer's
// testdata root — every subdirectory containing Go files — so tests can
// range over them, and the meta-test in cmd/costar-lint can assert they
// exist.
func Fixtures(testdataDir string) ([]string, error) {
	entries, err := os.ReadDir(testdataDir)
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(testdataDir, e.Name())
		if m, _ := filepath.Glob(filepath.Join(dir, "*.go")); len(m) > 0 {
			dirs = append(dirs, dir)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
