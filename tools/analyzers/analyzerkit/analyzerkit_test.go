package analyzerkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestWritesCollectsMutationSites(t *testing.T) {
	_, f := parseOne(t, `package p
func g() {
	x.f = 1            // assign
	x.f, y.h = 1, 2    // multi-assign
	x.f += 1           // op-assign
	x.f++              // incdec
	delete(x.m, k)     // delete
	z := 1             // define: not a write
	_ = z              // blank assign: counted, but has no selectors
}`)
	ws := Writes(f)
	if len(ws) != 7 {
		t.Fatalf("Writes found %d sites, want 7", len(ws))
	}
}

func TestSelectorsInReachesNestedTargets(t *testing.T) {
	_, f := parseOne(t, `package p
func g() {
	(*m.edges.Load())[k] = v
}`)
	ws := Writes(f)
	if len(ws) != 1 {
		t.Fatalf("Writes found %d sites, want 1", len(ws))
	}
	names := map[string]bool{}
	for _, sel := range SelectorsIn(ws[0].Target) {
		names[sel.Sel.Name] = true
	}
	if !names["edges"] || !names["Load"] {
		t.Fatalf("SelectorsIn missed nested selectors: %v", names)
	}
}

func TestRunPackageSortsDiagnostics(t *testing.T) {
	fset, f := parseOne(t, `package p
func a() {}
func b() {}`)
	an := &Analyzer{
		Name: "order",
		Run: func(pass *Pass) error {
			// Report in reverse position order; runPackage must sort.
			decls := pass.Files[0].Decls
			pass.Reportf(decls[1].Pos(), "second")
			pass.Reportf(decls[0].Pos(), "first")
			return nil
		},
	}
	diags, err := runPackage(fset, []*ast.File{f}, "p", []*Analyzer{an}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 || diags[0].Message != "first" || diags[1].Message != "second" {
		t.Fatalf("diagnostics not sorted by position: %v", diags)
	}
}
