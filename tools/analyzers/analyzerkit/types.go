package analyzerkit

// Type resolution for NeedTypes analyzers, stdlib-only. Two strategies
// mirror the driver's two modes:
//
//   - Under `go vet`, the .cfg unit names export data (PackageFile /
//     ImportMap) for every dependency, already built by cmd/go; the loader
//     feeds it to go/importer exactly like x/tools' unitchecker does.
//   - Standalone, there is no export data, so the loader type-checks
//     imports from source: module-internal paths resolve under the repo
//     root (located by walking up to go.mod), everything else under
//     GOROOT/src. Imported packages are checked with IgnoreFuncBodies —
//     only their API surface matters — and cached for the whole run.
//
// Loading is deliberately lenient: a dependency that fails to load becomes
// an empty placeholder package and the target package is still checked,
// with the first error recorded as Pass.TypesErr. Typed analyzers degrade
// on missing Info entries instead of crashing, and the standalone run —
// the strict `make lint` gate — type-checks the repo cleanly in practice.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Loader resolves imports and type-checks target packages for one driver
// run. It implements types.Importer.
type Loader struct {
	fset *token.FileSet

	// Vet mode: export-data importer plus the unit's vendor/import map.
	export    types.Importer
	importMap map[string]string

	// Source mode: module root and path, build context for file selection.
	repoDir string
	modPath string
	ctx     build.Context

	cache    map[string]*types.Package
	visiting map[string]bool
}

// newVetLoader builds a Loader over one vet unit's export data.
func newVetLoader(fset *token.FileSet, cfg *vetConfig) *Loader {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	packageFile := cfg.PackageFile
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &Loader{
		fset:      fset,
		export:    importer.ForCompiler(fset, compiler, lookup),
		importMap: cfg.ImportMap,
		cache:     map[string]*types.Package{},
		visiting:  map[string]bool{},
	}
}

// newSourceLoader builds a Loader that type-checks imports from source.
// startDir seeds the search for the enclosing module root.
func newSourceLoader(fset *token.FileSet, startDir string) *Loader {
	ctx := build.Default
	// Never select cgo-gated files: they reference C symbols that cannot
	// resolve without cgo preprocessing, and this repo uses none.
	ctx.CgoEnabled = false
	l := &Loader{
		fset:     fset,
		ctx:      ctx,
		cache:    map[string]*types.Package{},
		visiting: map[string]bool{},
	}
	l.repoDir, l.modPath = findModule(startDir)
	return l
}

// findModule walks up from dir to the nearest go.mod and returns the
// directory plus the declared module path ("", "" when none is found).
func findModule(dir string) (root, modPath string) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", ""
	}
	for {
		if data, err := os.ReadFile(filepath.Join(dir, "go.mod")); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest)
				}
			}
			return dir, ""
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", ""
		}
		dir = parent
	}
}

// Check type-checks one target package (the files of a driver pass) and
// returns the resolved package, the filled-in Info, and the first
// type-checking problem encountered (the package and Info are still
// usable when err != nil — checking is lenient).
func (l *Loader) Check(pkgPath string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var firstErr error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(pkgPath, l.fset, files, info)
	if firstErr == nil {
		firstErr = err
	}
	return pkg, info, firstErr
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.export != nil {
		if mapped, ok := l.importMap[path]; ok {
			path = mapped
		}
		return l.export.Import(path)
	}
	return l.importSource(path)
}

// importSource loads one dependency from source, caching the result. A
// package that cannot be loaded yields an empty placeholder so that
// checking of the importer still proceeds.
func (l *Loader) importSource(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.visiting[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.visiting[path] = true
	defer delete(l.visiting, path)

	pkg, err := l.checkSourceDir(path)
	if pkg == nil {
		pkg = types.NewPackage(path, guessPackageName(path))
		pkg.MarkComplete()
		_ = err // recorded implicitly: importers see an empty package
	}
	l.cache[path] = pkg
	return pkg, nil
}

// checkSourceDir parses and type-checks the package at the directory that
// import path resolves to, skipping function bodies.
func (l *Loader) checkSourceDir(path string) (*types.Package, error) {
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{
		Importer:         l,
		FakeImportC:      true,
		IgnoreFuncBodies: true,
		Error:            func(error) {}, // lenient: keep what resolved
	}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if pkg == nil {
		return nil, err
	}
	return pkg, nil
}

// dirFor maps an import path to a source directory: module-internal paths
// under the repo root, everything else under GOROOT/src.
func (l *Loader) dirFor(path string) (string, error) {
	if l.modPath != "" {
		if path == l.modPath {
			return l.repoDir, nil
		}
		if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
			return filepath.Join(l.repoDir, filepath.FromSlash(rest)), nil
		}
	}
	goroot := l.ctx.GOROOT
	if goroot == "" {
		return "", fmt.Errorf("cannot resolve %q: GOROOT unknown", path)
	}
	return filepath.Join(goroot, "src", filepath.FromSlash(path)), nil
}

// guessPackageName picks a plausible name for a placeholder package.
func guessPackageName(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	// Versioned module paths like ".../v2" name the element before.
	return base
}
