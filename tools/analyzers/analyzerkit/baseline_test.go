package analyzerkit

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func diag(analyzer, file, msg string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Message:  msg,
		Pos:      token.Position{Filename: file, Line: 7},
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.baseline")
	diags := []Diagnostic{
		diag("governortick", "internal/machine/step.go", "loop without tick"),
		diag("governortick", "internal/machine/step.go", "loop without tick"),
		diag("windowalias", "internal/gviz/dot.go", "window stored"),
	}
	if err := writeBaseline(path, diags); err != nil {
		t.Fatal(err)
	}
	counts, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale := filterBaseline(diags, counts)
	if len(fresh) != 0 || stale != 0 {
		t.Fatalf("round trip: fresh=%d stale=%d, want 0/0", len(fresh), stale)
	}
}

func TestBaselineCountsOccurrencesAndStaleness(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.baseline")
	recorded := []Diagnostic{
		diag("governortick", "a.go", "loop without tick"),
		diag("governortick", "a.go", "loop without tick"),
		diag("lockorder", "gone.go", "stats without statsMu"),
	}
	if err := writeBaseline(path, recorded); err != nil {
		t.Fatal(err)
	}
	counts, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	// Three current findings against a baseline holding two occurrences:
	// one survives; the lockorder entry no longer matches anything.
	current := []Diagnostic{
		diag("governortick", "a.go", "loop without tick"),
		diag("governortick", "a.go", "loop without tick"),
		diag("governortick", "a.go", "loop without tick"),
	}
	fresh, stale := filterBaseline(current, counts)
	if len(fresh) != 1 {
		t.Fatalf("fresh = %d, want 1 (occurrence counting)", len(fresh))
	}
	if stale != 1 {
		t.Fatalf("stale = %d, want 1 (the gone.go entry)", stale)
	}
}

func TestBaselineLineNumbersDoNotMatter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.baseline")
	old := diag("windowalias", "x.go", "window stored")
	if err := writeBaseline(path, []Diagnostic{old}); err != nil {
		t.Fatal(err)
	}
	counts, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	moved := old
	moved.Pos.Line = 99 // the file was edited above the finding
	fresh, stale := filterBaseline([]Diagnostic{moved}, counts)
	if len(fresh) != 0 || stale != 0 {
		t.Fatalf("edit-stability: fresh=%d stale=%d, want 0/0", len(fresh), stale)
	}
}

func TestBaselineMissingFileIsEmpty(t *testing.T) {
	counts, err := loadBaseline(filepath.Join(t.TempDir(), "absent"))
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 0 {
		t.Fatalf("missing baseline loaded %d entries, want 0", len(counts))
	}
}

func TestBaselineRejectsMalformedLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.baseline")
	if err := os.WriteFile(path, []byte("# comment\nnot a fingerprint\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(path); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("err = %v, want malformed-line error", err)
	}
}
