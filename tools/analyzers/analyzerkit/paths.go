package analyzerkit

// Every-path must-analysis over ast.Stmt trees: does every execution path
// through a loop body that reaches the back edge (falls off the end, or
// `continue`s) pass a statement satisfying a predicate? Paths that leave
// the loop — return, break, panic — are exempt: a loop that exits without
// ticking did bounded work.
//
// The walk is syntactic and deliberately conservative in two places:
// nested loops are opaque (they may run zero iterations, so their ticks
// don't count toward the outer loop), and a call is only credited when
// the predicate recognizes it (analyzers extend the predicate with
// package-local "this helper always ticks" summaries via FuncAlwaysCalls).

import (
	"go/ast"
	"go/token"
)

// pathOutcome is the set of ways control can leave one statement.
type pathOutcome struct {
	fallTicked   bool // falls through, predicate satisfied on that path
	fallUnticked bool // falls through, predicate NOT yet satisfied
	exits        bool // leaves the loop entirely (return/break/panic)
	bad          bool // reached the back edge unticked (via continue)
}

func (o *pathOutcome) merge(p pathOutcome) {
	o.fallTicked = o.fallTicked || p.fallTicked
	o.fallUnticked = o.fallUnticked || p.fallUnticked
	o.exits = o.exits || p.exits
	o.bad = o.bad || p.bad
}

// pathCtx tracks what unlabeled break/continue mean at the current depth.
type pathCtx struct {
	// directLoop: an unlabeled continue/break targets the loop under
	// analysis.
	directLoop bool
	// inSwitch: an unlabeled break targets an enclosing switch/select,
	// i.e. it falls through rather than exiting the loop.
	inSwitch bool
	// label names the loop under analysis ("" when unlabeled), so
	// `continue label` / `break label` resolve from nested constructs.
	label string
	// funcMode: analyzing a whole function body (FuncAlwaysCalls), where
	// returns are the edges that must be covered rather than exemptions.
	funcMode bool
}

// LoopTicksEveryPath reports whether every path through the body of a
// loop (labeled `label`, "" if none) to its back edge satisfies pred for
// some call expression. pred is consulted for every call on the path.
func LoopTicksEveryPath(body *ast.BlockStmt, label string, pred func(*ast.CallExpr) bool) bool {
	out := walkSeq(body.List, false, pathCtx{directLoop: true, label: label}, pred)
	return !out.bad && !out.fallUnticked
}

// FuncAlwaysCalls reports whether every path from fn's entry to every
// return (and to falling off the end) satisfies pred — the building block
// for "this helper always ticks" call summaries. Computed with the same
// machinery by treating returns as back edges.
func FuncAlwaysCalls(body *ast.BlockStmt, pred func(*ast.CallExpr) bool) bool {
	out := walkSeq(body.List, false, pathCtx{directLoop: false, label: "", funcMode: true}, pred)
	return !out.bad && !out.fallUnticked
}

// walkSeq analyzes a statement sequence given the incoming ticked state.
func walkSeq(stmts []ast.Stmt, ticked bool, ctx pathCtx, pred func(*ast.CallExpr) bool) pathOutcome {
	// cur tracks which fall-through states are live entering the next
	// statement; exits and bad accumulate.
	cur := pathOutcome{fallTicked: ticked, fallUnticked: !ticked}
	for _, s := range stmts {
		if !cur.fallTicked && !cur.fallUnticked {
			break // rest is unreachable on every fall path
		}
		next := pathOutcome{exits: cur.exits, bad: cur.bad}
		if cur.fallTicked {
			next.merge(walkStmt(s, true, ctx, pred))
		}
		if cur.fallUnticked {
			next.merge(walkStmt(s, false, ctx, pred))
		}
		cur = next
	}
	return cur
}

// walkStmt analyzes one statement entered with the given ticked state.
func walkStmt(s ast.Stmt, ticked bool, ctx pathCtx, pred func(*ast.CallExpr) bool) pathOutcome {
	fall := func(t bool) pathOutcome {
		return pathOutcome{fallTicked: t, fallUnticked: !t}
	}
	switch s := s.(type) {
	case nil:
		return fall(ticked)
	case *ast.ReturnStmt:
		if ctx.funcMode && !ticked && !containsPredCall(s, pred) {
			return pathOutcome{exits: true, bad: true}
		}
		return pathOutcome{exits: true}
	case *ast.BranchStmt:
		name := ""
		if s.Label != nil {
			name = s.Label.Name
		}
		switch s.Tok {
		case token.CONTINUE:
			if (name == "" && ctx.directLoop) || (name != "" && name == ctx.label) {
				// Reached the back edge now.
				return pathOutcome{exits: true, bad: !ticked}
			}
			// Targets a nested loop we are not inside of at this
			// context (cannot happen syntactically) — treat as exit.
			return pathOutcome{exits: true}
		case token.BREAK:
			if name == "" && ctx.inSwitch {
				// Leaves the switch, stays in the loop.
				return fall(ticked)
			}
			// Leaves the loop under analysis (or an outer one).
			return pathOutcome{exits: true}
		case token.GOTO:
			// Rare; assume it may reach the back edge unticked.
			return pathOutcome{exits: true, bad: !ticked}
		}
		return fall(ticked)
	case *ast.ExprStmt:
		if isTerminalCall(s.X) {
			return pathOutcome{exits: true}
		}
		if !ticked && containsPredCall(s, pred) {
			return fall(true)
		}
		return fall(ticked)
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.DeferStmt, *ast.GoStmt:
		// Defer/go bodies do not run on this path, but the predicate
		// decides what counts; plain statements tick if they contain a
		// recognized call (e.g. `if err := gov.Tick(); ...` init).
		if _, isDefer := s.(*ast.DeferStmt); isDefer {
			return fall(ticked)
		}
		if _, isGo := s.(*ast.GoStmt); isGo {
			return fall(ticked)
		}
		if !ticked && containsPredCall(s, pred) {
			return fall(true)
		}
		return fall(ticked)
	case *ast.BlockStmt:
		return walkSeq(s.List, ticked, ctx, pred)
	case *ast.LabeledStmt:
		return walkStmt(s.Stmt, ticked, ctx, pred)
	case *ast.IfStmt:
		if !ticked && (containsPredCall(s.Init, pred) || containsPredCallExpr(s.Cond, pred)) {
			ticked = true
		}
		out := walkSeq(s.Body.List, ticked, ctx, pred)
		if s.Else != nil {
			out.merge(walkStmt(s.Else, ticked, ctx, pred))
		} else {
			out.merge(pathOutcome{fallTicked: ticked, fallUnticked: !ticked})
		}
		return out
	case *ast.SwitchStmt:
		if !ticked && (containsPredCall(s.Init, pred) || containsPredCallExpr(s.Tag, pred)) {
			ticked = true
		}
		return walkCases(s.Body, ticked, ctx, pred)
	case *ast.TypeSwitchStmt:
		if !ticked && (containsPredCall(s.Init, pred) || containsPredCall(s.Assign, pred)) {
			ticked = true
		}
		return walkCases(s.Body, ticked, ctx, pred)
	case *ast.SelectStmt:
		inner := ctx
		inner.inSwitch = true
		out := pathOutcome{}
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			out.merge(walkSeq(comm.Body, ticked, inner, pred))
		}
		if len(s.Body.List) == 0 {
			out.merge(pathOutcome{exits: true}) // select{} blocks forever
		}
		return out
	case *ast.ForStmt, *ast.RangeStmt:
		// Nested loops are opaque: they may run zero iterations, so
		// nothing inside them is guaranteed. Their own back-edge
		// discipline is checked when the analyzer visits them directly.
		return fall(ticked)
	}
	return fall(ticked)
}

// walkCases handles switch/type-switch bodies: each clause is a path, an
// absent default adds an implicit fall-through path, and unlabeled breaks
// inside leave the switch, not the loop.
func walkCases(body *ast.BlockStmt, ticked bool, ctx pathCtx, pred func(*ast.CallExpr) bool) pathOutcome {
	inner := ctx
	inner.inSwitch = true
	out := pathOutcome{}
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		t := ticked
		if !t {
			for _, e := range cc.List {
				if containsPredCallExpr(e, pred) {
					t = true
				}
			}
		}
		co := walkSeq(cc.Body, t, inner, pred)
		// Fallthrough is handled implicitly: walkSeq treats it as a
		// plain statement, and the next clause is analyzed with the
		// same incoming state anyway (conservative merge).
		out.merge(co)
	}
	if !hasDefault {
		out.merge(pathOutcome{fallTicked: ticked, fallUnticked: !ticked})
	}
	return out
}

// containsPredCall reports whether any call inside stmt satisfies pred.
func containsPredCall(s ast.Stmt, pred func(*ast.CallExpr) bool) bool {
	if s == nil {
		return false
	}
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // not executed here
		case *ast.CallExpr:
			if pred(n) {
				found = true
			}
		}
		return !found
	})
	return found
}

func containsPredCallExpr(e ast.Expr, pred func(*ast.CallExpr) bool) bool {
	if e == nil {
		return false
	}
	return containsPredCall(&ast.ExprStmt{X: e}, pred)
}

// isTerminalCall recognizes calls that never return: panic and os.Exit.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			return (pkg.Name == "os" && fun.Sel.Name == "Exit") ||
				(pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf"))
		}
	}
	return false
}
