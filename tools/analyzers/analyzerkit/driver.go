package analyzerkit

// The driver half: Main runs a set of analyzers either as a `go vet
// -vettool` backend (the unitchecker protocol: a -V=full version probe,
// then one *.cfg JSON file per package unit) or standalone over package
// directories / "./..." patterns. The vet protocol is implemented by hand
// because this repo vendors no dependencies; the subset below — version
// line, cfg parsing, facts-file creation, diagnostics on stderr with exit
// code 2 — is everything cmd/go requires from a vet tool that neither
// exports nor imports facts.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// vetConfig is the package unit description cmd/go hands a vettool; field
// names must match the JSON written by the go command (see
// x/tools/go/analysis/unitchecker.Config). Fields this driver does not need
// are still listed so the decoder accepts every config the toolchain emits.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for an analyzer bundle binary. It never returns:
// the process exits 0 on a clean run, 1 on driver errors, 2 on findings
// (the exit code `go vet` interprets as "diagnostics were reported").
func Main(analyzers ...*Analyzer) {
	args := os.Args[1:]
	// `go vet` probes the tool's version before first use; the output only
	// needs to be stable, it becomes part of the build cache key.
	for _, a := range args {
		switch a {
		case "-V=full", "-V":
			fmt.Printf("%s version 1 (analyzerkit)\n", filepath.Base(os.Args[0]))
			os.Exit(0)
		case "-flags":
			// cmd/go asks the tool which flags it supports and forwards the
			// matching subset of the vet command line; this driver takes none.
			fmt.Println("[]")
			os.Exit(0)
		}
	}
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: %s [package-dir | ./... | unit.cfg]...\n\nanalyzers:\n", filepath.Base(os.Args[0]))
		for _, an := range analyzers {
			doc := an.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(os.Stderr, "  %-20s %s\n", an.Name, doc)
		}
		os.Exit(1)
	}
	if strings.HasSuffix(args[0], ".cfg") {
		runVetUnit(args[0], analyzers)
		return
	}
	runStandalone(args, analyzers)
}

// runVetUnit handles one unitchecker invocation: parse the unit's files,
// run the analyzers, write the (empty) facts file, report to stderr.
func runVetUnit(cfgPath string, analyzers []*Analyzer) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", cfgPath, err))
	}
	// The go command requires the facts file to exist even when the tool
	// has no facts to export; an empty file decodes as "no facts" because
	// this driver never reads PackageVetx either.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			fatal(err)
		}
		files = append(files, f)
	}
	diags, err := runPackage(fset, files, cfg.ImportPath, analyzers)
	if err != nil {
		fatal(err)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
	os.Exit(0)
}

// runStandalone analyzes package directories named directly or via Go's
// "dir/..." wildcard, grouping each directory's files into one pass.
func runStandalone(patterns []string, analyzers []*Analyzer) {
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fatal(err)
	}
	var all []Diagnostic
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs := map[string][]*ast.File{}
		names, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			fatal(err)
		}
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				fatal(err)
			}
			pkgs[f.Name.Name] = append(pkgs[f.Name.Name], f)
		}
		// A directory can hold both pkg and pkg_test ("external test")
		// packages; analyze each separately, like the build system does.
		pkgNames := make([]string, 0, len(pkgs))
		for name := range pkgs {
			pkgNames = append(pkgNames, name)
		}
		sort.Strings(pkgNames)
		for _, name := range pkgNames {
			diags, err := runPackage(fset, pkgs[name], dir, analyzers)
			if err != nil {
				fatal(err)
			}
			all = append(all, diags...)
		}
	}
	for _, d := range all {
		fmt.Println(d)
	}
	if len(all) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// runPackage applies every analyzer to one parsed package and returns the
// findings sorted by position.
func runPackage(fset *token.FileSet, files []*ast.File, pkgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	if len(files) == 0 {
		return nil, nil
	}
	var diags []Diagnostic
	for _, an := range analyzers {
		pass := &Pass{
			Analyzer: an,
			Fset:     fset,
			Files:    files,
			PkgName:  files[0].Name.Name,
			PkgPath:  pkgPath,
		}
		pass.SetReport(func(d Diagnostic) { diags = append(diags, d) })
		if err := an.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", an.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// expandPatterns resolves "dir/..." wildcards to every subdirectory
// containing Go files, skipping testdata, vendor, and hidden directories —
// the same pruning the go command applies to package patterns.
func expandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		root, rec := strings.CutSuffix(p, "...")
		root = filepath.Clean(root)
		if root == "" {
			root = "."
		}
		if !rec {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if path != root && (base == "testdata" || base == "vendor" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			if m, _ := filepath.Glob(filepath.Join(path, "*.go")); len(m) > 0 {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", filepath.Base(os.Args[0]), err)
	os.Exit(1)
}
