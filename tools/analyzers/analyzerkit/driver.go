package analyzerkit

// The driver half: Main runs a set of analyzers either as a `go vet
// -vettool` backend (the unitchecker protocol: a -V=full version probe,
// then one *.cfg JSON file per package unit) or standalone over package
// directories / "./..." patterns. The vet protocol is implemented by hand
// because this repo vendors no dependencies; the subset below — version
// line, cfg parsing, facts-file creation, diagnostics on stderr with exit
// code 2 — is everything cmd/go requires from a vet tool that neither
// exports nor imports facts.
//
// Typed analyzers (NeedTypes) get go/types resolution in both modes: from
// the unit's export data under vet, from source standalone (types.go).
// Standalone is the strict gate — `make lint` runs it over the repo — so
// the vet path degrades gracefully (Pass.TypesErr) when export data is
// missing rather than failing builds that `go vet` itself accepts.
//
// Diagnostics print as file:line:col with paths relativized to the
// current directory, identically in both modes, so baselines and editor
// jump-to-position behave the same however the tool is invoked. The
// -json flag (standalone) switches to one machine-readable array on
// stdout, mirroring `costar -format json` conventions. Baselines
// (-baseline=FILE standalone, COSTAR_LINT_BASELINE under vet, where
// cmd/go owns the command line) filter known findings; -write-baseline
// regenerates the file from the current findings.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// vetConfig is the package unit description cmd/go hands a vettool; field
// names must match the JSON written by the go command (see
// x/tools/go/analysis/unitchecker.Config). Fields this driver does not need
// are still listed so the decoder accepts every config the toolchain emits.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// options are the driver flags (standalone mode; vet mode reads the
// baseline path from COSTAR_LINT_BASELINE because cmd/go owns the
// command line there).
type options struct {
	json          bool
	baselinePath  string
	writeBaseline bool
}

// Main is the entry point for an analyzer bundle binary. It never returns:
// the process exits 0 on a clean run, 1 on driver errors, 2 on findings
// (the exit code `go vet` interprets as "diagnostics were reported").
func Main(analyzers ...*Analyzer) {
	args := os.Args[1:]
	// `go vet` probes the tool's version before first use; the output only
	// needs to be stable, it becomes part of the build cache key.
	for _, a := range args {
		switch a {
		case "-V=full", "-V":
			fmt.Printf("%s version 2 (analyzerkit)\n", filepath.Base(os.Args[0]))
			os.Exit(0)
		case "-flags":
			// cmd/go asks the tool which flags it supports and forwards the
			// matching subset of the vet command line; this driver takes
			// none there (standalone flags are parsed below instead).
			fmt.Println("[]")
			os.Exit(0)
		}
	}
	var opts options
	var patterns []string
	for _, a := range args {
		switch {
		case a == "-json":
			opts.json = true
		case strings.HasPrefix(a, "-baseline="):
			opts.baselinePath = strings.TrimPrefix(a, "-baseline=")
		case a == "-write-baseline":
			opts.writeBaseline = true
		case strings.HasPrefix(a, "-") && !strings.HasSuffix(a, ".cfg"):
			fatal(fmt.Errorf("unknown flag %s (supported: -json, -baseline=FILE, -write-baseline)", a))
		default:
			patterns = append(patterns, a)
		}
	}
	if opts.writeBaseline && opts.baselinePath == "" {
		fatal(fmt.Errorf("-write-baseline requires -baseline=FILE"))
	}
	if len(patterns) == 0 {
		fmt.Fprintf(os.Stderr, "usage: %s [-json] [-baseline=FILE [-write-baseline]] [package-dir | ./... | unit.cfg]...\n\nanalyzers:\n", filepath.Base(os.Args[0]))
		for _, an := range analyzers {
			doc := an.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(os.Stderr, "  %-20s %s\n", an.Name, doc)
		}
		os.Exit(1)
	}
	if strings.HasSuffix(patterns[0], ".cfg") {
		runVetUnit(patterns[0], analyzers)
		return
	}
	runStandalone(patterns, analyzers, opts)
}

// runVetUnit handles one unitchecker invocation: parse the unit's files,
// type-check against the unit's export data, run the analyzers, write the
// (empty) facts file, report to stderr.
func runVetUnit(cfgPath string, analyzers []*Analyzer) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", cfgPath, err))
	}
	// The go command requires the facts file to exist even when the tool
	// has no facts to export; an empty file decodes as "no facts" because
	// this driver never reads PackageVetx either.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			fatal(err)
		}
		files = append(files, f)
	}
	loader := newVetLoader(fset, &cfg)
	diags, err := runPackage(fset, files, cfg.ImportPath, analyzers, loader)
	if err != nil {
		fatal(err)
	}
	if path := os.Getenv("COSTAR_LINT_BASELINE"); path != "" {
		counts, err := loadBaseline(path)
		if err != nil {
			fatal(err)
		}
		diags, _ = filterBaseline(diags, counts)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
	os.Exit(0)
}

// runStandalone analyzes package directories named directly or via Go's
// "dir/..." wildcard, grouping each directory's files into one pass. One
// FileSet and one source Loader span the whole run so type-checked
// dependencies are shared across packages.
func runStandalone(patterns []string, analyzers []*Analyzer, opts options) {
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fatal(err)
	}
	fset := token.NewFileSet()
	var loader *Loader
	if len(dirs) > 0 {
		loader = newSourceLoader(fset, dirs[0])
	}
	var all []Diagnostic
	for _, dir := range dirs {
		pkgs := map[string][]*ast.File{}
		names, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			fatal(err)
		}
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				fatal(err)
			}
			pkgs[f.Name.Name] = append(pkgs[f.Name.Name], f)
		}
		// A directory can hold both pkg and pkg_test ("external test")
		// packages; analyze each separately, like the build system does.
		pkgNames := make([]string, 0, len(pkgs))
		for name := range pkgs {
			pkgNames = append(pkgNames, name)
		}
		sort.Strings(pkgNames)
		for _, name := range pkgNames {
			diags, err := runPackage(fset, pkgs[name], dir, analyzers, loader)
			if err != nil {
				fatal(err)
			}
			all = append(all, diags...)
		}
	}
	if opts.writeBaseline {
		if err := writeBaseline(opts.baselinePath, all); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d finding(s) to %s\n", len(all), opts.baselinePath)
		os.Exit(0)
	}
	var stale int
	if opts.baselinePath != "" {
		counts, err := loadBaseline(opts.baselinePath)
		if err != nil {
			fatal(err)
		}
		all, stale = filterBaseline(all, counts)
	}
	if opts.json {
		emitJSON(all)
	} else {
		for _, d := range all {
			fmt.Println(d)
		}
	}
	if stale > 0 {
		fmt.Fprintf(os.Stderr, "note: %d stale baseline entr%s no longer match any finding (regenerate with -write-baseline)\n",
			stale, map[bool]string{true: "y", false: "ies"}[stale == 1])
	}
	if len(all) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// jsonDiagnostic mirrors the costar CLI's lowercase-key JSON conventions.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// emitJSON writes every finding as one JSON array on stdout.
func emitJSON(diags []Diagnostic) {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     filepath.ToSlash(d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

// runPackage applies every analyzer to one parsed package and returns the
// findings sorted by position. Type resolution is computed once, and only
// when some matching analyzer asks for it.
func runPackage(fset *token.FileSet, files []*ast.File, pkgPath string, analyzers []*Analyzer, loader *Loader) ([]Diagnostic, error) {
	if len(files) == 0 {
		return nil, nil
	}
	pkgName := files[0].Name.Name
	matched := func(an *Analyzer) bool {
		return an.Match == nil || an.Match(pkgName, filepath.ToSlash(pkgPath))
	}
	pass := &Pass{
		Fset:    fset,
		Files:   files,
		PkgName: pkgName,
		PkgPath: pkgPath,
	}
	for _, an := range analyzers {
		if an.NeedTypes && matched(an) {
			if loader == nil {
				pass.TypesErr = fmt.Errorf("no type information available in this mode")
				break
			}
			pass.Pkg, pass.Info, pass.TypesErr = loader.Check(pkgPath, files)
			break
		}
	}
	var diags []Diagnostic
	for _, an := range analyzers {
		if !matched(an) {
			continue
		}
		p := *pass
		p.Analyzer = an
		p.SetReport(func(d Diagnostic) { diags = append(diags, d) })
		if err := an.Run(&p); err != nil {
			return nil, fmt.Errorf("%s: %w", an.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// expandPatterns resolves "dir/..." wildcards to every subdirectory
// containing Go files, skipping testdata, vendor, and hidden directories —
// the same pruning the go command applies to package patterns.
func expandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		root, rec := strings.CutSuffix(p, "...")
		root = filepath.Clean(root)
		if root == "" {
			root = "."
		}
		if !rec {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if path != root && (base == "testdata" || base == "vendor" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			if m, _ := filepath.Glob(filepath.Join(path, "*.go")); len(m) > 0 {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// repoRoot anchors path relativization: diagnostics print module-relative
// paths identically whether the tool runs standalone (cwd = repo root) or
// under `go vet` (cwd and file names chosen by cmd/go), so editor links,
// baselines, and CI logs agree across modes.
var repoRoot = func() string {
	root, _ := findModule(".")
	return root
}()

// relPosition rewrites an absolute filename to a module-relative one when
// the file lives under the repo; anything else is left alone.
func relPosition(p token.Position) token.Position {
	if p.Filename == "" || repoRoot == "" {
		return p
	}
	abs := p.Filename
	if !filepath.IsAbs(abs) {
		a, err := filepath.Abs(abs)
		if err != nil {
			return p
		}
		abs = a
	}
	if r, err := filepath.Rel(repoRoot, abs); err == nil && !strings.HasPrefix(r, "..") {
		p.Filename = filepath.ToSlash(r)
	}
	return p
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", filepath.Base(os.Args[0]), err)
	os.Exit(1)
}
