// Package governortick enforces the PR 5 tick-placement discipline from
// DESIGN.md §5e: in internal/machine and internal/prediction, every loop
// whose trip count can grow with the input or with closure size must
// account its work to the resource governor on every path that reaches
// the loop's back edge. A loop that can spin without ticking is exactly
// the unbounded-work DoS the governor exists to prevent — limits and
// context cancellation are only as good as the densest un-ticked cycle.
//
// Loop shapes are classified syntactically:
//
//   - `for { ... }` (no condition) and `for cond { ... }` (while-shape,
//     no init/post) are input- or work-proportional until proven
//     otherwise: they must tick on every path, or carry a
//     `//costar:allow governortick -- <bound proof>` annotation.
//   - `for i := 0; i < n; i++ { ... }` (three-clause) and `range` loops
//     iterate already-materialized, already-accounted data; they are
//     exempt.
//
// A "tick" is a call to a Governor tick method (StepTick, ClosureTick,
// LookaheadTick, RepairTick, ctxTick — receiver type checked when type
// information is available), or to a same-package function that itself
// provably ticks on every path (a call-graph summary computed by
// fixpoint, so helpers like a step function that always ticks satisfy
// the loop that calls them). Every-path coverage uses analyzerkit's
// must-analysis: paths that leave the loop (return, break, panic) are
// exempt — they did bounded work — and nested loops are opaque (they may
// run zero iterations).
package governortick

import (
	"go/ast"
	"strings"

	"costar/tools/analyzers/analyzerkit"
)

// tickMethods are the Governor's accounting entry points.
var tickMethods = map[string]bool{
	"StepTick":      true,
	"ClosureTick":   true,
	"LookaheadTick": true,
	"RepairTick":    true,
	"ctxTick":       true,
}

// Analyzer is the exported instance for multichecker bundling.
var Analyzer = &analyzerkit.Analyzer{
	Name: "governortick",
	Doc: "flag input-proportional loops that can reach their back edge without a governor tick\n\n" +
		"Every `for {}` / `for cond {}` loop in the machine and prediction packages must\n" +
		"call a Governor tick method (or a helper that provably always ticks) on every\n" +
		"path, or carry a justified //costar:allow annotation proving its bound.",
	Run:       run,
	NeedTypes: true,
	Match: func(pkgName, pkgPath string) bool {
		return pkgName == "machine" || pkgName == "prediction"
	},
}

func run(pass *analyzerkit.Pass) error {
	// Phase 1: call-graph summaries — which same-package functions tick
	// on every path from entry to return? Fixpoint because helpers may
	// tick by calling other helpers.
	always := alwaysTicking(pass)
	pred := func(call *ast.CallExpr) bool { return isTick(pass, call, always) }

	// Phase 2: classify and check every loop.
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Filename(f.Pos()), "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			loop, label := loopAndLabel(n)
			if loop == nil {
				return true
			}
			if !unboundedShape(loop) {
				return true
			}
			if !analyzerkit.LoopTicksEveryPath(loop.Body, label, pred) {
				pass.Reportf(loop.Pos(),
					"input-proportional loop can reach its back edge without a governor tick: every path must call a *Tick method (or a helper that always ticks), or annotate a proven bound with //costar:allow governortick -- <why>")
			}
			return true
		})
	}
	return nil
}

// loopAndLabel unwraps `label: for ...` so the must-analysis can resolve
// labeled continue/break, returning the ForStmt (nil for non-loops and
// range loops, which are exempt).
func loopAndLabel(n ast.Node) (*ast.ForStmt, string) {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n, ""
	case *ast.LabeledStmt:
		if inner, ok := n.Stmt.(*ast.ForStmt); ok {
			return inner, n.Label.Name
		}
	}
	return nil, ""
}

// unboundedShape reports whether the loop's shape is input- or
// work-proportional: no condition at all, or a bare while-shape. A loop
// with a post statement (`for ; s != nil; s = s.Below`) walks a
// materialized structure and is exempt, as are range loops.
func unboundedShape(loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return true
	}
	return loop.Init == nil && loop.Post == nil
}

// isTick recognizes governor tick calls and calls to always-ticking
// same-package helpers.
func isTick(pass *analyzerkit.Pass, call *ast.CallExpr, always map[string]bool) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && tickMethods[sel.Sel.Name] {
		if pass.Info != nil {
			if pkg, typ, _ := analyzerkit.ReceiverOf(pass.Info, call); typ != "" {
				return typ == "Governor" && pkg == "machine"
			}
		}
		// Without type information (vet mode fallback): the method names
		// are distinctive enough within the matched packages.
		return true
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return always[fun.Name]
	case *ast.SelectorExpr:
		// Method on a local type that always ticks (e.g. engine.move).
		return always[fun.Sel.Name]
	}
	return false
}

// alwaysTicking computes, by fixpoint, the same-package functions and
// methods guaranteed to tick on every path from entry to every return.
func alwaysTicking(pass *analyzerkit.Pass) map[string]bool {
	type fn struct {
		name string
		body *ast.BlockStmt
	}
	var fns []fn
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Filename(f.Pos()), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fns = append(fns, fn{name: fd.Name.Name, body: fd.Body})
		}
	}
	always := map[string]bool{}
	for range [8]struct{}{} {
		changed := false
		for _, f := range fns {
			if always[f.name] {
				continue
			}
			pred := func(call *ast.CallExpr) bool { return isTick(pass, call, always) }
			if analyzerkit.FuncAlwaysCalls(f.body, pred) {
				always[f.name] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return always
}
