// Fixture: §5e tick placement. While-shaped loops in the machine and
// prediction packages must account their work to the governor on every
// path that reaches the back edge; loops over already-materialized data
// (three-clause, range) are exempt, and a proven bound can be recorded
// with a //costar:allow annotation instead of a tick.
package machine

type Governor struct{ ticks int }

func (g *Governor) StepTick(stackDepth int) error {
	g.ticks += stackDepth
	return nil
}

func (g *Governor) ClosureTick() error {
	g.ticks++
	return nil
}

// drainUnticked spins work-proportionally without accounting.
func drainUnticked(g *Governor, work []int) {
	for len(work) > 0 { // want "without a governor tick"
		work = work[1:]
	}
	_ = g
}

// drainTicked ticks before every step; accepted.
func drainTicked(g *Governor, work []int) {
	for len(work) > 0 {
		if err := g.StepTick(len(work)); err != nil {
			return
		}
		work = work[1:]
	}
}

// skipPath ticks on one branch but lets the continue path reach the back
// edge unaccounted.
func skipPath(g *Governor, work []int) {
	for { // want "without a governor tick"
		if len(work) == 0 {
			return
		}
		if work[0] < 0 {
			work = work[1:]
			continue
		}
		if err := g.ClosureTick(); err != nil {
			return
		}
		work = work[1:]
	}
}

// step is an always-ticking helper: every path from entry to return
// ticks, so callers inherit the tick through the call-graph summary.
func step(g *Governor) bool {
	if err := g.ClosureTick(); err != nil {
		return false
	}
	return true
}

// drainViaHelper ticks through step; accepted.
func drainViaHelper(g *Governor, work []int) {
	for len(work) > 0 {
		if !step(g) {
			return
		}
		work = work[1:]
	}
}

// boundedShapes iterate materialized, already-accounted data; exempt.
func boundedShapes(work []int) int {
	sum := 0
	for i := 0; i < len(work); i++ {
		sum += work[i]
	}
	for _, w := range work {
		sum += w
	}
	return sum
}

// trimZeros carries a proven bound; the annotation suppresses the report
// (and a missing reason would itself be flagged).
func trimZeros(words []uint64) int {
	end := len(words)
	//costar:allow governortick -- fixture: bounded by len(words), a word count fixed at grammar-compile time
	for end > 0 && words[end-1] == 0 {
		end--
	}
	return end
}
