// Package scratchescape enforces the DESIGN.md §5f lifetime contract:
// values carved from pooled per-parse scratch — machine.Mem's arenas,
// prediction's decision scratch, the parser's pooled parseScratch — must
// never flow into anything that outlives the parse: a Result (other than
// the documented machine.Result.Final exception), or the shared SLL DFA
// cache's retained structures (dfaState fields, the retained parameters
// of newDFAState) without first passing a recognized deep copy
// (copyConfigs, copyStack, NTSet.Clone, or an element-copying append of
// a value-typed slice).
//
// The analysis is analyzerkit's intra-procedural taint walker: scratch
// taint enters at a declarative list of field reads (the arena fields of
// Mem and prediction's scratch struct), propagates through assignments,
// arena allocation calls, and same-package call summaries, is filtered by
// a type gate (only types that can alias pooled memory carry taint — a
// *tree.Tree copied out of a scratch accumulator is clean, the []*tree.Tree
// accumulator itself is not), and is reported where it crosses a retention
// boundary. Escapes a human can prove safe are suppressed in place with
// `//costar:allow scratchescape -- <why>`.
//
// Matching is by declared package name (machine, prediction, parser), so
// the fixture replicas under testdata exercise the same spec the real
// packages are held to. Test files are exempt: tests may wire scratch
// however they like, nothing they build outlives the test.
package scratchescape

import (
	"go/ast"
	"go/types"
	"strings"

	"costar/tools/analyzers/analyzerkit"
)

// sourceFields lists the field reads that introduce scratch taint:
// pkgName → typeName → field set. A nil field set means every field.
var sourceFields = map[string]map[string]map[string]bool{
	"machine": {
		// Mem's arenas are scratch; trees (the Result-scoped tree arena)
		// deliberately is not — see the §5f contract in mem.go.
		"Mem": {"states": true, "prefix": true, "suffix": true, "syms": true, "acc": true, "words": true},
	},
	"prediction": {
		"scratch": nil, // every field of the decision scratch is scratch
		// closureResult.stable aliases the decision scratch ("valid only
		// until the engine's next call of the same kind" — subparser.go);
		// the other fields are values.
		"closureResult": {"stable": true},
	},
}

// sanitizers are the recognized deep-copy functions: calls whose result
// is cache-owned no matter what went in. Bare names are package
// functions, Type.Method names are methods.
var sanitizers = map[string]bool{
	"copyConfigs":  true,
	"copyStack":    true,
	"NTSet.Clone":  true,
	"Tree.Clone":   true,
	"Mem.Trees":    true, // the Result-scoped tree arena accessor
	"PrefixFrame.ForestInOrder": true,
	"Mem.forestInOrderIn":       true, // allocates from the tree arena
}

// retainedParams maps same-package functions that retain specific
// parameters into cache-owned structure: function name → retained
// parameter indices. These are the "annotated summaries" for the intern
// path: newDFAState stores cfgs and haltedAlts into the dfaState it
// returns, but only reads alts.
var retainedParams = map[string][]int{
	"newDFAState": {1, 3}, // (key, cfgs, alts, haltedAlts, anomalous)
}

// retainedTypes are the structs whose fields are retention boundaries:
// storing scratch into them publishes it beyond the parse. Result is
// handled separately for the Final exception.
var retainedTypes = map[string]map[string]bool{
	"prediction": {"dfaState": true, "cacheGen": true, "Cache": true},
}

// resultTypes are the per-parse result structs; every field store is a
// boundary except the documented exceptions.
var resultTypes = map[string]map[string]map[string]bool{
	// machine.Result.Final is scratch BY CONTRACT: the parser must drop
	// it before releasing its Mem (§5f); the analyzer encodes exactly
	// that exception.
	"machine": {"Result": {"Final": true}},
	"parser":  {"Result": {}},
}

// taintCapable lists the named types that can alias pooled scratch
// memory. Slices and maps always can (their backing arrays/buckets may
// be arena-carved); everything else — basics, strings, *tree.Tree,
// grammar.Token, Usage values — cannot.
var taintCapable = map[string]map[string]bool{
	"machine":    {"State": true, "PrefixStack": true, "SuffixStack": true, "PrefixFrame": true, "SuffixFrame": true, "NTSet": true, "Mem": true, "Result": true},
	"prediction": {"config": true, "scratch": true, "engine": true},
	"arena":      {"Arena": true, "Slab": true},
}

// Analyzer is the exported instance for multichecker bundling.
var Analyzer = &analyzerkit.Analyzer{
	Name: "scratchescape",
	Doc: "flag pooled scratch escaping into Results or the shared DFA cache\n\n" +
		"Per-parse scratch (machine.Mem arenas, prediction decision scratch) dies at\n" +
		"Reset; anything that outlives the parse — Result fields, interned dfaStates —\n" +
		"must hold deep copies (copyConfigs/copyStack/Clone). An escape is a\n" +
		"use-after-reset when the pooled Mem serves its next parse.",
	Run:       run,
	NeedTypes: true,
	Match: func(pkgName, pkgPath string) bool {
		switch pkgName {
		case "machine", "prediction", "parser":
			return true
		}
		return false
	},
}

func spec() analyzerkit.TaintSpec {
	return analyzerkit.TaintSpec{
		Source:    isSource,
		Sanitizer: isSanitizer,
		Type:      canCarryTaint,
	}
}

func isSource(p *analyzerkit.Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, typ, field := analyzerkit.FieldOf(p.Info, sel)
	byType, ok := sourceFields[pkg]
	if !ok {
		return false
	}
	fields, ok := byType[typ]
	if !ok {
		return false
	}
	return fields == nil || fields[field]
}

func isSanitizer(p *analyzerkit.Pass, call *ast.CallExpr) bool {
	if _, typ, method := analyzerkit.ReceiverOf(p.Info, call); typ != "" {
		return sanitizers[typ+"."+method]
	}
	if fn := analyzerkit.CalleeOf(p.Info, call); fn != nil {
		return sanitizers[fn.Name()]
	}
	return false
}

func canCarryTaint(t types.Type) bool {
	t = analyzerkit.Deref(t)
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Chan:
		return true
	case *types.Basic, *types.Signature:
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return taintCapable[obj.Pkg().Name()][obj.Name()]
}

func run(pass *analyzerkit.Pass) error {
	if pass.Info == nil {
		// No type resolution in this mode (see Pass.TypesErr); the
		// standalone `make lint` run is the strict gate.
		return nil
	}
	flow := analyzerkit.NewFlow(pass, spec())
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Filename(f.Pos()), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			flow.Analyze(fd)
			checkFunc(pass, flow, fd)
		}
	}
	return nil
}

// checkFunc reports every tainted value crossing a retention boundary
// inside fd.
func checkFunc(pass *analyzerkit.Pass, flow *analyzerkit.Flow, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				rhs := n.Rhs[min(i, len(n.Rhs)-1)]
				if !flow.Tainted(rhs) {
					continue
				}
				pkg, typ, field := analyzerkit.FieldOf(pass.Info, sel)
				if pkg == "" {
					continue
				}
				if retainedTypes[pkg][typ] {
					pass.Reportf(n.Pos(),
						"scratch-allocated value stored into cache-retained %s.%s.%s: the shared DFA cache outlives the parse; deep-copy first (copyConfigs/copyStack/Clone)",
						pkg, typ, field)
					continue
				}
				if exceptions, ok := resultTypes[pkg][typ]; ok && !exceptions[field] {
					pass.Reportf(n.Pos(),
						"scratch-allocated value stored into %s.Result.%s: Results outlive the pooled Mem that backs this value (use-after-reset); copy into Result-scoped memory",
						pkg, field)
				}
			}
		case *ast.CompositeLit:
			checkComposite(pass, flow, n)
		case *ast.CallExpr:
			checkRetainingCall(pass, flow, n)
		}
		return true
	})
}

// checkComposite flags tainted values in composite literals of retained
// or result types.
func checkComposite(pass *analyzerkit.Pass, flow *analyzerkit.Flow, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	n, ok := analyzerkit.Deref(tv.Type).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return
	}
	pkg, typ := n.Obj().Pkg().Name(), n.Obj().Name()
	retained := retainedTypes[pkg][typ]
	exceptions, isResult := resultTypes[pkg][typ]
	if !retained && !isResult {
		return
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		field := ""
		value := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				field = id.Name
			}
			value = kv.Value
		} else if i < st.NumFields() {
			field = st.Field(i).Name()
		}
		if !flow.Tainted(value) {
			continue
		}
		if isResult && exceptions[field] {
			continue
		}
		what := "cache-retained"
		if isResult {
			what = "parse-outliving"
		}
		pass.Reportf(value.Pos(),
			"scratch-allocated value in %s %s.%s literal (field %s): deep-copy before it outlives the parse",
			what, pkg, typ, field)
	}
}

// checkRetainingCall flags tainted arguments in the retained positions of
// annotated functions (the intern path's newDFAState).
func checkRetainingCall(pass *analyzerkit.Pass, flow *analyzerkit.Flow, call *ast.CallExpr) {
	fn := analyzerkit.CalleeOf(pass.Info, call)
	if fn == nil {
		return
	}
	retained, ok := retainedParams[fn.Name()]
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != pass.PkgName {
		return
	}
	for _, idx := range retained {
		if idx >= len(call.Args) {
			continue
		}
		if flow.Tainted(call.Args[idx]) {
			pass.Reportf(call.Args[idx].Pos(),
				"scratch-allocated value passed to %s parameter %d, which is retained by the DFA cache: deep-copy first (copyConfigs/copyStack/Clone)",
				fn.Name(), idx)
		}
	}
}
