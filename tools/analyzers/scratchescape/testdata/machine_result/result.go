// Fixture: the §5f Result boundary. machine.Result.Final is the one
// sanctioned scratch-in-Result field (the parser extracts what it needs
// before releasing its Mem); every other Result field must hold memory
// that survives the pooled arenas' Reset.
package machine

type State struct{ step int }

type Result struct {
	Steps int
	Final *State
	Trace []*State
}

// Mem is the pooled per-parse arena bundle; states is scratch.
type Mem struct {
	states []State
}

func (m *Mem) newState() *State {
	m.states = append(m.states, State{})
	return &m.states[len(m.states)-1]
}

// finish uses the documented Final exception; accepted.
func finish(m *Mem) Result {
	return Result{Steps: len(m.states), Final: m.newState()}
}

// leakTrace stores arena-backed states beyond the exception.
func leakTrace(m *Mem) Result {
	st := m.newState()
	var r Result
	r.Steps = 1
	r.Trace = []*State{st} // want "Results outlive the pooled Mem"
	return r
}

// leakLiteral leaks the same way through a composite literal field.
func leakLiteral(m *Mem) Result {
	return Result{
		Trace: []*State{m.newState()}, // want "deep-copy before it outlives the parse"
	}
}

// derived values (counts, flags) computed from scratch are clean.
func summarize(m *Mem) Result {
	return Result{Steps: len(m.states)}
}
