// Fixture: the intern-copy fast path. The SLL DFA cache interns decision
// scratch into dfaStates; newDFAState retains parameters 1 (cfgs) and 3
// (haltedAlts), so raw scratch slices must be deep-copied before the
// call, and dfaState field stores must hold copies too. Matching is by
// declared package name, so this replica is held to the same spec as the
// real internal/prediction.
package prediction

type config struct{ state, alt int }

// scratch is the decision scratch: every field aliases pooled memory.
type scratch struct {
	stable []config
	halted []int
}

type engine struct{ scr *scratch }

// dfaState is cache-retained: it outlives every parse.
type dfaState struct {
	configs    []config
	haltedAlts []int
}

// copyConfigs is the recognized deep copy for config slices.
func copyConfigs(cfgs []config) []config {
	out := make([]config, len(cfgs))
	copy(out, cfgs)
	return out
}

// newDFAState retains cfgs and haltedAlts (params 1 and 3) in the state
// it returns; alts is only read.
func newDFAState(key uint64, cfgs []config, alts []int, haltedAlts []int, anomalous bool) *dfaState {
	_, _, _ = key, alts, anomalous
	return &dfaState{configs: cfgs, haltedAlts: haltedAlts}
}

// internRaw hands scratch-aliasing slices straight to the cache: both
// retained arguments are flagged.
func internRaw(e *engine, key uint64, alts []int) *dfaState {
	return newDFAState(key,
		e.scr.stable, // want "retained by the DFA cache"
		alts,
		e.scr.halted, // want "retained by the DFA cache"
		false)
}

// internCopied is the sanctioned fast path: copyConfigs for the configs,
// an element-copying append for the halted alternatives (int elements
// cannot alias pooled memory, so the fresh backing array is a deep copy).
func internCopied(e *engine, key uint64, alts []int) *dfaState {
	return newDFAState(key, copyConfigs(e.scr.stable), alts, append([]int(nil), e.scr.halted...), false)
}

// storeRaw writes scratch into an interned state after construction.
func storeRaw(e *engine, st *dfaState) {
	st.configs = e.scr.stable // want "cache-retained"
}

// storeCopied holds a deep copy; accepted.
func storeCopied(e *engine, st *dfaState) {
	st.configs = copyConfigs(e.scr.stable)
}

// readBack reads cache-owned data; nothing escapes.
func readBack(st *dfaState) int {
	return len(st.configs) + len(st.haltedAlts)
}
