package cowedges

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"costar/tools/analyzers/analyzerkit"
)

func check(t *testing.T, files map[string]string) []analyzerkit.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	var parsed []*ast.File
	var diags []analyzerkit.Diagnostic
	for name, src := range files {
		f, err := parser.ParseFile(fset, name, src, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		parsed = append(parsed, f)
	}
	pass := &analyzerkit.Pass{
		Analyzer: Analyzer,
		Fset:     fset,
		Files:    parsed,
		PkgName:  parsed[0].Name.Name,
		PkgPath:  "test",
	}
	pass.SetReport(func(d analyzerkit.Diagnostic) { diags = append(diags, d) })
	if err := Analyzer.Run(pass); err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestFlagsWriteThroughLoadedMap(t *testing.T) {
	diags := check(t, map[string]string{
		// Writing through the loaded pointer races with readers even in
		// cache.go itself — the COW path must copy first.
		"cache.go": `package prediction
func (st *dfaState) evil(t int, next *dfaState) {
	(*st.edges.Load())[t] = next
}`,
	})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "COW") {
		t.Errorf("diagnostic lacks COW guidance: %s", diags[0])
	}
}

func TestFlagsStoreOutsideCacheFile(t *testing.T) {
	diags := check(t, map[string]string{
		"predict.go": `package prediction
func hijack(st *dfaState, m *map[int]*dfaState) {
	st.edges.Store(m)
}
func hijackStarts(g *cacheGen, m *map[int]*dfaState) {
	g.starts.Swap(m)
}`,
	})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
}

func TestAllowsCOWPathInCacheFile(t *testing.T) {
	diags := check(t, map[string]string{
		// The legitimate sequence: load, copy into a fresh map, publish.
		"cache.go": `package prediction
func (st *dfaState) setEdge(t int, next *dfaState) {
	m := st.edges.Load()
	nm := make(map[int]*dfaState, len(*m)+1)
	for k, v := range *m {
		nm[k] = v
	}
	nm[t] = next
	st.edges.Store(&nm)
}`,
	})
	if len(diags) != 0 {
		t.Fatalf("false positives on the COW path: %v", diags)
	}
}

func TestLoadsAreAllowedEverywhere(t *testing.T) {
	diags := check(t, map[string]string{
		"predict.go": `package prediction
func (st *dfaState) step(t int) *dfaState {
	next, ok := (*st.edges.Load())[t]
	if !ok {
		return nil
	}
	return next
}`,
	})
	if len(diags) != 0 {
		t.Fatalf("reads were flagged: %v", diags)
	}
}

func TestOtherPackagesIgnored(t *testing.T) {
	diags := check(t, map[string]string{
		"x.go": `package other
type g struct{ edges map[int]int }
func (x *g) set() { x.edges[1] = 2 }`,
	})
	if len(diags) != 0 {
		t.Fatalf("analyzer leaked outside prediction: %v", diags)
	}
}
