package cowedges

import (
	"path/filepath"
	"testing"

	"costar/tools/analyzers/analyzerkit/kittest"
)

func TestFixtures(t *testing.T) {
	dirs, err := kittest.Fixtures("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no fixture packages under testdata")
	}
	for _, dir := range dirs {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			kittest.Run(t, Analyzer, dir)
		})
	}
}
