// Package cowedges flags direct mutation of the shared SLL DFA transition
// maps in internal/prediction outside the copy-on-write path.
//
// A dfaState's edges (and a cacheGen's starts) are atomic.Pointer-held maps
// read lock-free by every parsing goroutine; the only sound mutation is the
// COW sequence in cache.go — copy the map, update the copy, publish it with
// a single Store under the generation mutex. Two mistakes break this
// silently and only under load:
//
//   - writing through a loaded map, (*st.edges.Load())[t] = next, which
//     races with concurrent readers; and
//   - calling Store/Swap from outside cache.go, which bypasses the mutex
//     that serializes writers and can lose concurrent insertions.
//
// The race detector catches the first only when tests happen to collide;
// this analyzer rejects both shapes statically.
package cowedges

import (
	"go/ast"

	"costar/tools/analyzers/analyzerkit"
)

// cowFields are the atomic.Pointer map slots with a COW discipline.
var cowFields = map[string]bool{"edges": true, "starts": true}

// mutators are the atomic.Pointer methods that publish a new map.
var mutators = map[string]bool{"Store": true, "Swap": true, "CompareAndSwap": true}

// allowFile is the one file implementing the COW path.
const allowFile = "cache.go"

// Analyzer is the exported instance for multichecker bundling.
var Analyzer = &analyzerkit.Analyzer{
	Name: "cowedges",
	Doc: "flag direct mutation of shared DFA edge maps outside the copy-on-write path\n\n" +
		"dfaState.edges and cacheGen.starts are lock-free shared maps; mutate them only\n" +
		"via the copy-update-publish sequence in cache.go.",
	Run: run,
}

func run(pass *analyzerkit.Pass) error {
	if pass.PkgName != "prediction" {
		return nil
	}
	for _, f := range pass.Files {
		inCache := pass.Filename(f.Package) == allowFile
		// Writes whose target reaches through .edges/.starts — map stores
		// via a loaded pointer, delete() on a loaded map, aliasing
		// assignments — race with readers in every file, cache.go included:
		// the legitimate path copies into a fresh map and never writes
		// through the shared one.
		for _, w := range analyzerkit.Writes(f) {
			for _, sel := range analyzerkit.SelectorsIn(w.Target) {
				if cowFields[sel.Sel.Name] {
					pass.Reportf(sel.Sel.Pos(),
						"write through shared DFA map %s: copy, update the copy, and publish with Store (see cache.go COW path)",
						sel.Sel.Name)
				}
			}
		}
		if inCache {
			continue
		}
		// Publishing calls outside cache.go bypass the writer mutex.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !mutators[method.Sel.Name] {
				return true
			}
			field, ok := method.X.(*ast.SelectorExpr)
			if !ok || !cowFields[field.Sel.Name] {
				return true
			}
			pass.Reportf(method.Sel.Pos(),
				"%s.%s outside cache.go bypasses the COW writer mutex; route the update through the cache.go publish path",
				field.Sel.Name, method.Sel.Name)
			return true
		})
	}
	return nil
}
