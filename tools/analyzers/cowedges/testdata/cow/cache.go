// Fixture: cache.go holds the legitimate COW sequence — copy the map,
// update the copy, publish it with a single Store — and is the only file
// allowed to call the publishing mutators.
package prediction

type dfaState struct {
	edges atomicMap
}

type atomicMap struct{ p *map[int]*dfaState }

func (m *atomicMap) Load() *map[int]*dfaState  { return m.p }
func (m *atomicMap) Store(v *map[int]*dfaState) { m.p = v }

func setEdge(st *dfaState, k int, v *dfaState) {
	old := *st.edges.Load()
	next := make(map[int]*dfaState, len(old)+1)
	for t, s := range old {
		next[t] = s
	}
	next[k] = v
	st.edges.Store(&next)
}
