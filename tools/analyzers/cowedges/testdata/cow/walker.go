package prediction

// writeThrough mutates the shared map in place, racing every lock-free
// reader.
func writeThrough(st *dfaState, k int, v *dfaState) {
	(*st.edges.Load())[k] = v // want "write through shared DFA map"
}

// publishElsewhere calls the publishing mutator outside cache.go,
// bypassing the writer mutex.
func publishElsewhere(st *dfaState, next *map[int]*dfaState) {
	st.edges.Store(next) // want "bypasses the COW writer mutex"
}

// lookup reads through the atomic pointer — the whole point of the
// scheme; accepted.
func lookup(st *dfaState, k int) *dfaState {
	return (*st.edges.Load())[k]
}
