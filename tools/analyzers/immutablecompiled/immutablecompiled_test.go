package immutablecompiled

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"costar/tools/analyzers/analyzerkit"
)

// check parses the named sources as one package and runs the analyzer.
func check(t *testing.T, files map[string]string) []analyzerkit.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	var parsed []*ast.File
	var diags []analyzerkit.Diagnostic
	for name, src := range files {
		f, err := parser.ParseFile(fset, name, src, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		parsed = append(parsed, f)
	}
	pass := &analyzerkit.Pass{
		Analyzer: Analyzer,
		Fset:     fset,
		Files:    parsed,
		PkgName:  parsed[0].Name.Name,
		PkgPath:  "test",
	}
	pass.SetReport(func(d analyzerkit.Diagnostic) { diags = append(diags, d) })
	if err := Analyzer.Run(pass); err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestFlagsTableWriteOutsideConstructor(t *testing.T) {
	diags := check(t, map[string]string{
		"mutate.go": `package grammar
func (c *Compiled) evil() {
	c.prodLhs = nil
	c.ntProds[0] = append(c.ntProds[0], 1)
	c.numDefined++
	delete(c.termIDs, "x")
}`,
	})
	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics, want 4: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "immutable after construction") {
			t.Errorf("diagnostic lacks rationale: %s", d)
		}
	}
}

func TestAllowsConstructorFileAndReads(t *testing.T) {
	diags := check(t, map[string]string{
		"compile.go": `package grammar
func compile(c *Compiled) {
	c.prodLhs = append(c.prodLhs, 0) // constructor file: allowed
	c.numDefined = 3
}`,
		"reader.go": `package grammar
func (c *Compiled) Lhs(i int) int {
	x := c.prodLhs[i] // read: allowed anywhere
	return int(x)
}`,
	})
	if len(diags) != 0 {
		t.Fatalf("false positives: %v", diags)
	}
}

func TestAnalysisTablesProtected(t *testing.T) {
	diags := check(t, map[string]string{
		"other.go": `package analysis
func (a *Analysis) evil() {
	a.firstRow[0][0] = 1
	a.nullable["S"] = true
}`,
	})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
}

func TestOtherPackagesIgnored(t *testing.T) {
	diags := check(t, map[string]string{
		"x.go": `package other
type thing struct{ prodLhs []int }
func (x *thing) set() { x.prodLhs = nil }`,
	})
	if len(diags) != 0 {
		t.Fatalf("analyzer leaked outside its packages: %v", diags)
	}
}

// TestFieldNamesAreUnambiguous pins the syntactic soundness assumption: in
// the real grammar and analysis packages, each protected field name is
// declared as a struct field exactly once, so a name match identifies the
// protected table.
func TestFieldNamesAreUnambiguous(t *testing.T) {
	for pkgDir, spec := range map[string]map[string]bool{
		"../../../internal/grammar":  protected["grammar"].fields,
		"../../../internal/analysis": protected["analysis"].fields,
	} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, pkgDir, nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for _, pkg := range pkgs {
			if strings.HasSuffix(pkg.Name, "_test") {
				continue
			}
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					st, ok := n.(*ast.StructType)
					if !ok {
						return true
					}
					for _, fld := range st.Fields.List {
						for _, name := range fld.Names {
							if spec[name.Name] {
								counts[name.Name]++
							}
						}
					}
					return true
				})
			}
		}
		for name := range spec {
			if counts[name] != 1 {
				t.Errorf("%s: field %q declared %d times, want exactly 1 (name matching is no longer unambiguous)",
					pkgDir, name, counts[name])
			}
		}
	}
}
