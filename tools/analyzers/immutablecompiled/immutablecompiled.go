// Package immutablecompiled flags writes to the dense tables of
// grammar.Compiled and analysis.Analysis outside their constructor files.
//
// Both types promise immutability after construction — the concurrency
// story of parser sessions (many goroutines share one Compiled and one
// Analysis with no locks) rests on it, and the certificate layer adds a
// second reason: a Certificate is bound to the grammar content at issuance,
// so a post-construction table write would silently invalidate an attached
// certificate. The fields are unexported, which already confines writes to
// the owning package; this analyzer tightens that to the constructor file,
// turning the convention into a CI-enforced invariant.
package immutablecompiled

import (
	"costar/tools/analyzers/analyzerkit"
)

// protected lists, per package, the table fields and the files allowed to
// write them. Field names are matched syntactically (the types are not
// resolved); each listed name is used as a field of exactly one struct in
// its package, which the analyzer's own tests pin down.
var protected = map[string]struct {
	fields map[string]bool
	allow  map[string]bool
}{
	"grammar": {
		fields: set("termNames", "ntNames", "termIDs", "ntIDs", "numDefined",
			"prodLhs", "prodRhs", "ntProds"),
		allow: set("compile.go"),
	},
	"analysis": {
		fields: set("nullableID", "firstRow", "followRow", "rowWords", "eofCol",
			"nullable", "first", "follow", "callSites", "leftRec", "cycles"),
		// snapshot.go holds FromSnapshot, the artifact-load constructor: it
		// populates a fresh Analysis from serialized fixpoint tables before
		// any sharing, the same lifecycle phase as New in analysis.go.
		allow: set("analysis.go", "snapshot.go"),
	},
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// Analyzer is the exported instance for multichecker bundling.
var Analyzer = &analyzerkit.Analyzer{
	Name: "immutablecompiled",
	Doc: "flag writes to grammar.Compiled / analysis.Analysis tables outside their constructor files\n\n" +
		"The compiled grammar and its analyses are shared across goroutines without locks\n" +
		"and carry content-fingerprinted certificates; both depend on the tables being\n" +
		"frozen once construction finishes.",
	Run: run,
}

func run(pass *analyzerkit.Pass) error {
	spec, ok := protected[pass.PkgName]
	if !ok {
		return nil
	}
	for _, f := range pass.Files {
		for _, w := range analyzerkit.Writes(f) {
			for _, sel := range analyzerkit.SelectorsIn(w.Target) {
				if !spec.fields[sel.Sel.Name] {
					continue
				}
				if spec.allow[pass.Filename(sel.Sel.Pos())] {
					continue
				}
				pass.Reportf(sel.Sel.Pos(),
					"write to %s outside its constructor file: the table is immutable after construction (sessions share it lock-free and certificates fingerprint it)",
					sel.Sel.Name)
			}
		}
	}
	return nil
}
