// Fixture: compile.go is the sanctioned constructor file — table writes
// here are the construction path and are accepted.
package grammar

type Compiled struct {
	termNames []string
	ntNames   []string
}

func compile(terms []string) *Compiled {
	c := &Compiled{}
	c.termNames = append(c.termNames, terms...)
	c.ntNames = []string{"S"}
	return c
}
