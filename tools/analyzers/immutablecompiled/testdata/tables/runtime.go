package grammar

// rename mutates a frozen table outside the constructor file: sessions
// share the Compiled lock-free and certificates fingerprint its content.
func rename(c *Compiled, i int, name string) {
	c.termNames[i] = name // want "outside its constructor file"
}

// lookup only reads the tables; accepted.
func lookup(c *Compiled, i int) string {
	return c.termNames[i]
}
