// Fixture: the §5h window-ownership rule outside the home packages.
// grammar.Token.Literal and lexer.Error.Snippet are views into the
// scanner's input window, dead as soon as the streaming cursor advances;
// storing one into a struct field or map needs a copy first — the PR 8
// Diag() snippet rule, generalized. This fixture imports the real types,
// so it exercises exactly what any consumer package is held to.
package retain

import (
	"strings"

	"costar/internal/grammar"
	"costar/internal/lexer"
)

type entry struct {
	name string
}

type report struct {
	snippet string
}

// retainRaw stores the raw window string into longer-lived structure.
func retainRaw(t grammar.Token, e *entry, seen map[string]string) {
	e.name = t.Literal // want "zero-copy input window stored into"
	seen["last"] = t.Literal // want "stored into a map"
}

// retainTrimmed launders the window through an alias-preserving helper;
// TrimSpace returns a substring of the same backing array.
func retainTrimmed(t grammar.Token, e *entry) {
	e.name = strings.TrimSpace(t.Literal) // want "zero-copy input window stored into"
}

// retainCloned copies first; accepted (the Diag() rule).
func retainCloned(t grammar.Token, e *entry, seen map[string]string) {
	e.name = strings.Clone(t.Literal)
	seen["last"] = strings.Clone(strings.TrimSpace(t.Literal))
}

// convertRaw rebuilds a diagnostic-like struct around the raw snippet.
func convertRaw(e *lexer.Error) report {
	return report{
		snippet: e.Snippet, // want "zero-copy input window in .* literal"
	}
}

// convertCloned is the sanctioned conversion; accepted.
func convertCloned(e *lexer.Error) report {
	return report{snippet: strings.Clone(e.Snippet)}
}

// transport moves whole Token values through the pipeline — the
// documented design, not an aliasing bug; accepted.
type hold struct {
	tok grammar.Token
}

func transport(lx lexer.Lexeme, h *hold) {
	h.tok = lx.Tok
}

// derived values (lengths, comparisons) are clean; accepted.
func classify(t grammar.Token) int {
	if t.Literal == "if" {
		return 1
	}
	return len(t.Literal)
}
