// Package windowalias enforces the zero-copy window ownership rule from
// DESIGN.md §5h: the strings carved out of the scanner's input window —
// grammar.Token.Literal and lexer.Error.Snippet — are views that die when
// the streaming cursor advances. Outside their home packages they may be
// read, compared, formatted, and passed along, but never *stored* into a
// struct field or map without copying (strings.Clone, string([]byte(...)),
// concatenation, fmt.Sprintf — anything that allocates a fresh backing
// array). This is the generalized Diag() rule: lexer.Error.Diag clones its
// snippet precisely because diag.Diagnostic outlives the window.
//
// Taint enters at reads of the two window fields, follows slicing and the
// alias-preserving strings helpers (TrimSpace and friends return
// substrings, not copies), and is reported at field and map stores. The
// type gate limits carriers to strings, []byte, and the window-carrying
// structs themselves, so derived values (lengths, hashes, parsed numbers)
// stay clean. Suppress a provably-safe store in place with
// `//costar:allow windowalias -- <why>`.
//
// Home packages (lexer, grammar — where windows are created and their
// lifetime is managed) and test files are exempt. Whole Lexeme/Token
// values moving through the streaming pipeline are the documented
// transport and are not flagged; only the raw string escaping into
// longer-lived structure is.
package windowalias

import (
	"go/ast"
	"go/types"
	"strings"

	"costar/tools/analyzers/analyzerkit"
)

// windowFields are the zero-copy window sources: pkg → type → field.
var windowFields = map[string]map[string]string{
	"grammar": {"Token": "Literal"},
	"lexer":   {"Error": "Snippet"},
}

// aliasPreserving lists strings/bytes helpers that return views of their
// first argument rather than copies.
var aliasPreserving = map[string]bool{
	"TrimSpace": true, "Trim": true, "TrimLeft": true, "TrimRight": true,
	"TrimPrefix": true, "TrimSuffix": true, "TrimFunc": true,
	"Cut": true, "CutPrefix": true, "CutSuffix": true,
	"Split": true, "SplitN": true, "SplitAfter": true, "SplitAfterN": true,
	"Fields": true, "FieldsFunc": true,
}

// Analyzer is the exported instance for multichecker bundling.
var Analyzer = &analyzerkit.Analyzer{
	Name: "windowalias",
	Doc: "flag zero-copy input windows stored outside their home packages\n\n" +
		"grammar.Token.Literal and lexer.Error.Snippet are views into the scanner's\n" +
		"input window, valid only until the cursor advances. Storing one into a struct\n" +
		"field or map elsewhere pins freed or about-to-be-overwritten memory; copy\n" +
		"first (strings.Clone — the Diag() rule).",
	Run:       run,
	NeedTypes: true,
	Match: func(pkgName, pkgPath string) bool {
		if _, home := windowFields[pkgName]; home {
			return false
		}
		return !strings.HasSuffix(pkgName, "_test")
	},
}

func spec() analyzerkit.TaintSpec {
	return analyzerkit.TaintSpec{
		Source: func(p *analyzerkit.Pass, e ast.Expr) bool {
			sel, ok := e.(*ast.SelectorExpr)
			if !ok {
				return false
			}
			pkg, typ, field := analyzerkit.FieldOf(p.Info, sel)
			return windowFields[pkg][typ] == field && field != ""
		},
		Sanitizer: func(p *analyzerkit.Pass, call *ast.CallExpr) bool {
			// strings.Clone (and bytes.Clone) are the canonical copies.
			fn := analyzerkit.CalleeOf(p.Info, call)
			return fn != nil && fn.Name() == "Clone" && fn.Pkg() != nil &&
				(fn.Pkg().Path() == "strings" || fn.Pkg().Path() == "bytes")
		},
		Propagate: func(p *analyzerkit.Pass, call *ast.CallExpr) (ast.Expr, bool) {
			fn := analyzerkit.CalleeOf(p.Info, call)
			if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
				return nil, false
			}
			if (fn.Pkg().Path() == "strings" || fn.Pkg().Path() == "bytes") && aliasPreserving[fn.Name()] {
				return call.Args[0], true
			}
			return nil, false
		},
		Type: func(t types.Type) bool {
			t = analyzerkit.Deref(t)
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
				pkg, name := n.Obj().Pkg().Name(), n.Obj().Name()
				if _, ok := windowFields[pkg][name]; ok {
					return true // the window-carrying structs themselves
				}
				if pkg == "lexer" && name == "Lexeme" {
					return true
				}
			}
			switch u := t.Underlying().(type) {
			case *types.Basic:
				return u.Info()&types.IsString != 0
			case *types.Slice:
				eu, ok := u.Elem().Underlying().(*types.Basic)
				if ok {
					return eu.Kind() == types.Byte || eu.Info()&types.IsString != 0
				}
				return canCarryNamed(u.Elem())
			case *types.Map:
				return true // conservatively: maps of windows
			}
			return false
		},
	}
}

func canCarryNamed(t types.Type) bool {
	n, ok := analyzerkit.Deref(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	pkg, name := n.Obj().Pkg().Name(), n.Obj().Name()
	if _, ok := windowFields[pkg][name]; ok {
		return true
	}
	return pkg == "lexer" && name == "Lexeme"
}

func run(pass *analyzerkit.Pass) error {
	if pass.Info == nil {
		return nil // no type resolution in this mode; see Pass.TypesErr
	}
	flow := analyzerkit.NewFlow(pass, spec())
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Filename(f.Pos()), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			flow.Analyze(fd)
			checkFunc(pass, flow, fd)
		}
	}
	return nil
}

// checkFunc reports window-aliasing strings stored into struct fields or
// maps anywhere in fd.
func checkFunc(pass *analyzerkit.Pass, flow *analyzerkit.Flow, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				rhs := n.Rhs[min(i, len(n.Rhs)-1)]
				if !isWindowString(pass, rhs) || !flow.Tainted(rhs) {
					continue
				}
				switch target := lhs.(type) {
				case *ast.SelectorExpr:
					if pkg, typ, field := analyzerkit.FieldOf(pass.Info, target); pkg != "" {
						pass.Reportf(n.Pos(),
							"zero-copy input window stored into %s.%s.%s: the window dies when the cursor advances; copy first (strings.Clone — the Diag() rule)",
							pkg, typ, field)
					}
				case *ast.IndexExpr:
					if isMapStore(pass, target) {
						pass.Reportf(n.Pos(),
							"zero-copy input window stored into a map: the window dies when the cursor advances; copy first (strings.Clone — the Diag() rule)")
					}
				}
			}
		case *ast.CompositeLit:
			checkComposite(pass, flow, n)
		}
		return true
	})
}

// checkComposite flags window strings placed in struct literal fields —
// a struct literal is a store the moment the struct outlives the window.
func checkComposite(pass *analyzerkit.Pass, flow *analyzerkit.Flow, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	n, ok := analyzerkit.Deref(tv.Type).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return
	}
	// Window-carrier structs (building a grammar.Token from a window is
	// the transport working as designed) are exempt.
	if canCarryNamed(tv.Type) {
		return
	}
	for i, elt := range lit.Elts {
		field := ""
		value := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				field = id.Name
			}
			value = kv.Value
		} else if i < st.NumFields() {
			field = st.Field(i).Name()
		}
		if isWindowString(pass, value) && flow.Tainted(value) {
			pass.Reportf(value.Pos(),
				"zero-copy input window in %s.%s literal (field %s): copy first (strings.Clone — the Diag() rule)",
				n.Obj().Pkg().Name(), n.Obj().Name(), field)
		}
	}
}

// isWindowString limits sink reporting to raw string values — moving a
// whole Token/Lexeme is the documented transport, only the bare window
// string escaping is an aliasing bug.
func isWindowString(pass *analyzerkit.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isMapStore(pass *analyzerkit.Pass, idx *ast.IndexExpr) bool {
	tv, ok := pass.Info.Types[idx.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}
