// Package registry is the single authoritative list of the repo's bundled
// analyzers. cmd/costar-lint runs exactly this list; its meta-test walks
// the same list to assert every analyzer ships fixture packages — adding
// an analyzer here without fixtures fails CI.
package registry

import (
	"costar/tools/analyzers/analyzerkit"
	"costar/tools/analyzers/cowedges"
	"costar/tools/analyzers/diagliterals"
	"costar/tools/analyzers/governortick"
	"costar/tools/analyzers/immutablecompiled"
	"costar/tools/analyzers/lockorder"
	"costar/tools/analyzers/scratchescape"
	"costar/tools/analyzers/windowalias"
)

// All returns every bundled analyzer, syntactic table guards first, then
// the typed contract checkers.
func All() []*analyzerkit.Analyzer {
	return []*analyzerkit.Analyzer{
		immutablecompiled.Analyzer,
		cowedges.Analyzer,
		diagliterals.Analyzer,
		scratchescape.Analyzer,
		windowalias.Analyzer,
		governortick.Analyzer,
		lockorder.Analyzer,
	}
}
