// Package lockorder enforces the COW cache's atomic/mutex discipline
// (DESIGN.md §5b) and the stats mutex contract:
//
//  1. Publication stores to the copy-on-write maps — `.edges.Store(...)`
//     on a dfaState, `.starts.Store(...)` on a cacheGen — must happen
//     with the owning mutex held. The documented exceptions are the
//     pre-publication constructors and bulk-import installers
//     (newDFAState, newGen, installEdges, installStarts), where the
//     value is not yet visible to any reader. Atomic Loads need no lock;
//     that is the point of the scheme.
//  2. In the parser package, the `stats` field is guarded by `statsMu`:
//     any function touching `.stats` must have acquired `.statsMu`
//     first (and not released it before the access).
//  3. The watched mutexes are leaves: no function may acquire one while
//     holding another (statsMu vs. the cache mutexes, in either order).
//     A consistent never-nest rule cannot deadlock; any nesting is a
//     latent lock-inversion the moment a second nesting appears.
//
// The checks are syntactic over a linear in-source-order walk of each
// function body — the same soundness argument as cowedges: the fields
// involved (mu, statsMu, edges, starts, stats) are unexported, so every
// access site lives in the matched packages, and `defer mu.Unlock()`
// keeps the mutex held to function end. Suppress a provably-safe site
// with `//costar:allow lockorder -- <why>`.
package lockorder

import (
	"go/ast"
	"strings"

	"costar/tools/analyzers/analyzerkit"
)

// prePublication lists functions where COW-map stores happen before the
// containing struct is visible to any other goroutine.
var prePublication = map[string]bool{
	"newDFAState":   true,
	"newGen":        true,
	"installEdges":  true,
	"installStarts": true,
}

// cowFields are the atomic COW map fields whose Store calls require the
// owning mutex (package prediction).
var cowFields = map[string]bool{"edges": true, "starts": true}

// Analyzer is the exported instance for multichecker bundling.
var Analyzer = &analyzerkit.Analyzer{
	Name: "lockorder",
	Doc: "enforce the COW cache's mutex discipline and stats-mutex contract\n\n" +
		"edges/starts publication stores need the owning mutex (except pre-publication\n" +
		"constructors); parser's stats field needs statsMu; and the watched mutexes\n" +
		"are leaves — acquiring one while holding another is a latent lock inversion.",
	Run: run,
	Match: func(pkgName, pkgPath string) bool {
		return pkgName == "prediction" || pkgName == "parser"
	},
}

func run(pass *analyzerkit.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Filename(f.Pos()), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc walks fd's body in source order, tracking which watched
// mutexes are held, and reports discipline violations at each site.
func checkFunc(pass *analyzerkit.Pass, fd *ast.FuncDecl) {
	walkBody(pass, fd.Name.Name, fd.Body)
}

// walkBody is the in-source-order walk for one function or closure body.
func walkBody(pass *analyzerkit.Pass, fnName string, body *ast.BlockStmt) {
	held := []string{} // mutex paths currently held, in acquisition order
	holding := func() string { return strings.Join(held, ", ") }
	release := func(path string) {
		for i, h := range held {
			if h == path {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure runs later, under its own discipline; checking
			// it against the enclosing held-set would be wrong in both
			// directions. It gets the same walk, fresh.
			walkBody(pass, fnName, n.Body)
			return false
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the mutex held to function end;
			// deliberately not treated as a release.
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, baseIsMutex := mutexPath(sel.X)
			switch sel.Sel.Name {
			case "Lock":
				if !baseIsMutex {
					return true
				}
				if len(held) > 0 {
					pass.Reportf(n.Pos(),
						"acquiring %s while holding %s: the watched mutexes (statsMu, cache mu) are leaves and must never nest — a second nesting elsewhere is a deadlock",
						base, holding())
				}
				held = append(held, base)
			case "Unlock":
				if baseIsMutex {
					release(base)
				}
			case "Store":
				// <x>.edges.Store / <x>.starts.Store: publication into a
				// COW map.
				inner, ok := sel.X.(*ast.SelectorExpr)
				if !ok || !cowFields[inner.Sel.Name] || pass.PkgName != "prediction" {
					return true
				}
				if prePublication[fnName] || len(held) > 0 {
					return true
				}
				pass.Reportf(n.Pos(),
					"%s.Store without the owning mutex held: copy-on-write publication must serialize on mu (or happen pre-publication in %s)",
					inner.Sel.Name, "newDFAState/newGen/installEdges/installStarts")
			}
		case *ast.SelectorExpr:
			// Guarded field: parser's stats requires statsMu.
			if pass.PkgName != "parser" || n.Sel.Name != "stats" {
				return true
			}
			for _, h := range held {
				if strings.HasSuffix(h, "statsMu") {
					return true
				}
			}
			pass.Reportf(n.Pos(),
				"access to the stats field without statsMu held: stats is written by concurrent parses (accumulate) and read by Stats(); lock statsMu first")
		}
		return true
	})
}

// mutexPath renders a selector chain ending in a watched mutex field
// (`mu`, or anything ending in `Mu` like statsMu) as a comparable string.
func mutexPath(e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "mu" && !strings.HasSuffix(name, "Mu") {
		return "", false
	}
	return renderPath(sel), true
}

// renderPath prints a selector chain (x.y.z) for diagnostics and held-set
// identity; non-identifier bases collapse to "·".
func renderPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return renderPath(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return renderPath(e.X)
	case *ast.StarExpr:
		return renderPath(e.X)
	case *ast.CallExpr:
		return renderPath(e.Fun) + "()"
	}
	return "·"
}
