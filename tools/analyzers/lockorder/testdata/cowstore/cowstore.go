// Fixture: §5b COW publication discipline and the leaf-mutex rule in the
// prediction package. edges/starts Stores need the owning mutex held —
// except in the pre-publication constructors, where no reader can see the
// struct yet — and the watched mutexes must never nest.
package prediction

import "sync"

type atomicMap struct{ p any }

func (m *atomicMap) Store(v any) { m.p = v }

type cacheGen struct {
	mu     sync.Mutex
	starts atomicMap
}

type dfaState struct {
	mu    sync.Mutex
	edges atomicMap
}

// setEdgeLocked publishes under the owning mutex; accepted (the deferred
// Unlock keeps it held to function end).
func setEdgeLocked(st *dfaState, next map[int]*dfaState) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.edges.Store(next)
}

// setEdgeRacy publishes without serializing writers.
func setEdgeRacy(st *dfaState, next map[int]*dfaState) {
	st.edges.Store(next) // want "without the owning mutex"
}

// newDFAState stores pre-publication: no reader can see st yet; accepted.
func newDFAState() *dfaState {
	st := &dfaState{}
	st.edges.Store(map[int]*dfaState{})
	return st
}

// nestMutexes acquires a cache mutex while already holding another
// watched mutex — the leaf rule forbids any nesting.
func nestMutexes(g *cacheGen, st *dfaState, next map[int]*dfaState) {
	g.mu.Lock()
	st.mu.Lock() // want "must never nest"
	st.edges.Store(next)
	st.mu.Unlock()
	g.mu.Unlock()
}

// sequentialLocks never holds two at once; accepted.
func sequentialLocks(g *cacheGen, st *dfaState, starts, next map[int]*dfaState) {
	g.mu.Lock()
	g.starts.Store(starts)
	g.mu.Unlock()
	st.mu.Lock()
	st.edges.Store(next)
	st.mu.Unlock()
}
