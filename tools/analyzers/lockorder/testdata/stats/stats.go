// Fixture: the statsMu contract in the parser package — stats is written
// by concurrent parses and read by Stats(); every access needs statsMu
// acquired and not yet released.
package parser

import "sync"

type Stats struct{ Parses int }

type Parser struct {
	statsMu sync.Mutex
	stats   Stats
}

// Stats snapshots under the mutex; accepted.
func (p *Parser) Stats() Stats {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	return p.stats
}

// peek reads the guarded field without the mutex.
func (p *Parser) peek() int {
	return p.stats.Parses // want "without statsMu held"
}

// accumulate writes under the mutex, released after the access; accepted.
func (p *Parser) accumulate(n int) {
	p.statsMu.Lock()
	p.stats.Parses += n
	p.statsMu.Unlock()
}

// lateRead releases the mutex before the read.
func (p *Parser) lateRead() int {
	p.statsMu.Lock()
	p.statsMu.Unlock()
	return p.stats.Parses // want "without statsMu held"
}
