module costar

go 1.22
